package wal

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/base"
	"repro/internal/dev"
	"repro/internal/iosched"
	"repro/internal/obs"
)

// PersistMode selects where stage 1 of the log lives (§3.1/§3.2).
type PersistMode int

const (
	// PersistPMem keeps stage-1 chunks in persistent memory: a transaction
	// commits by flushing CPU caches (a persist barrier), enabling
	// low-latency immediate commit without group commit.
	PersistPMem PersistMode = iota
	// PersistDRAM keeps stage-1 chunks in DRAM: durability is only reached
	// once chunks are staged to SSD and synced, so commits go through group
	// commit (or a synchronous per-commit stage, for ARIES-style modes).
	PersistDRAM
)

// Block header in stage-2 segment files:
//
//	u32 magic, u32 payloadLen, u64 chunkSeq, u32 chunkOff, u32 pad, u64 maxGSN
const (
	blockMagic      = 0x57424C4B // "WBLK"
	blockHeaderSize = 32
)

// Partition is one worker-private log (Figure 2): a circular set of chunks
// in stage-1 memory, a staging path to stage-2 SSD segment files, and the
// durability watermarks the commit protocols and RFA rely on.
//
// Concurrency contract: exactly one owner goroutine appends (transactions
// are pinned to workers, §3.1). Any goroutine may flush/stage published
// bytes. Staging is serialized by stageMu.
type Partition struct {
	ID  int
	mgr *Manager

	cur   atomic.Pointer[Chunk]
	freeC chan *Chunk
	fullC chan *Chunk

	// lastGSN is the GSN of the most recent record appended (owner writes,
	// anyone reads). Per-partition record GSNs are strictly increasing.
	lastGSN atomic.Uint64
	// gsnHW per current chunk tracks the highest GSN whose record bytes are
	// already published in that chunk; see Chunk appends below.
	curGSNHW atomic.Uint64
	// flushedGSN is the durability watermark: every record of this
	// partition with GSN ≤ flushedGSN is durable (PMem-flushed in
	// PersistPMem mode, staged+synced in PersistDRAM mode). Monotone.
	flushedGSN atomic.Uint64

	// Staging state, guarded by stageMu.
	stageMu   sync.Mutex
	segs      []*segmentInfo
	segSeq    int
	pendingC  chan struct{} // signal to the WAL writer that a chunk was sealed
	liveBytes atomic.Uint64 // staged, not yet pruned (stage-2 live WAL volume)

	// Async staging cycle (guarded by stageMu): write handles submitted to
	// the I/O scheduler this cycle, chunks whose recycle must wait for
	// those writes to complete, and the slab backing in-flight block
	// headers (stack headers would not survive an async submit).
	cycle        []*iosched.Request
	cycleRecycle []*Chunk
	syncReqs     []*iosched.Request
	hdrSlab      []byte
	hdrUsed      int

	// Ship block index (guarded by stageMu), lazily seeded on the first
	// ShipRead: one ref per staged block, in (seq, chunk offset) order.
	// Only the prefix shipRefs[:shipDurable] — blocks past their sync
	// barrier — may be served to replicas; see ship.go.
	shipRefs    []shipBlockRef
	shipDurable int
	shipSeeded  bool

	// Owner-only state.
	encCtx  codecContext
	scratch []byte

	// Stats.
	appendedBytes   atomic.Uint64
	appendedRecords atomic.Uint64
	sealStalls      atomic.Uint64 // times the owner waited for a free chunk
	stagedBytes     atomic.Uint64
	prunedBytes     atomic.Uint64
	scratchRegrows  atomic.Uint64 // encode-scratch reallocations (steady state: 0)
}

type segmentInfo struct {
	file   *dev.File
	name   string
	maxGSN base.GSN
	size   int64
	closed bool
	dirty  bool
}

func (p *Partition) segName(n int) string {
	return fmt.Sprintf("wal/p%03d/seg%08d", p.ID, n)
}

// initSegSeq resumes segment numbering after the highest existing segment
// (live or archived), keeping per-partition segment order monotone across
// engine generations — media recovery replays archived segments of all
// generations in name order.
func (p *Partition) initSegSeq() {
	max := 0
	scan := func(prefix string) {
		for _, name := range p.mgr.cfg.SSD.List(prefix) {
			if n, ok := parseSegSuffix(name, prefix); ok && n > max {
				max = n
			}
		}
	}
	dir := fmt.Sprintf("wal/p%03d/", p.ID)
	scan(dir)
	scan(ArchivePrefix + dir)
	p.segSeq = max
}

// parseSegSuffix parses "<prefix>segNNNNNNNN" without fmt's reflection and
// allocation machinery (fmt.Sscanf allocates per call, which matters when a
// restart scans thousands of archived segments).
func parseSegSuffix(name, prefix string) (int, bool) {
	if len(name) < len(prefix)+3 || name[:len(prefix)] != prefix || name[len(prefix):len(prefix)+3] != "seg" {
		return 0, false
	}
	digits := name[len(prefix)+3:]
	if len(digits) == 0 {
		return 0, false
	}
	n := 0
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// initChunks allocates the circular chunk list and installs the first
// current chunk.
func (p *Partition) initChunks(n, size int) {
	p.freeC = make(chan *Chunk, n)
	p.fullC = make(chan *Chunk, n)
	p.pendingC = make(chan struct{}, 1)
	for i := 0; i < n-1; i++ {
		p.freeC <- &Chunk{Region: p.mgr.cfg.PMem.Allocate(size)}
	}
	first := &Chunk{Region: p.mgr.cfg.PMem.Allocate(size)}
	first.initAsCurrent(p.ID, p.mgr.cfg.ChunkSeqFloor+1)
	p.cur.Store(first)
}

// Append encodes rec into the current chunk, assigning it the next GSN:
// max(proposal, last GSN of this log) + 1 (the GSN protocol of §2.4 — the
// proposal carries max(txnGSN, pageGSN), and the +1 over the log's own last
// GSN keeps per-log GSNs strictly increasing). It returns the assigned GSN.
// Owner-only.
//
// Aliasing contract: rec and every byte slice it references (Key, Before,
// After, Diffs, Payload) are read only during the synchronous encode into
// p.scratch and are dead once Append returns. Callers may therefore pass
// slices that alias latched page memory or a per-session arena, and may
// reuse or mutate rec and its buffers immediately afterwards — this is what
// makes the zero-allocation hot path sound. Nothing in the log retains a
// reference to the record.
func (p *Partition) Append(rec *Record, proposal base.GSN) base.GSN {
	gsn := proposal
	if last := base.GSN(p.lastGSN.Load()); last > gsn {
		gsn = last
	}
	if floor := base.GSN(p.mgr.gsnFloor.Load()); floor > gsn {
		gsn = floor
	}
	gsn++
	rec.GSN = gsn

	if need := EncodedSize(rec); need > cap(p.scratch) {
		// Grow geometrically (×2, min need): additive growth re-allocates on
		// every small size increase under ramping record sizes.
		newCap := 2 * cap(p.scratch)
		if newCap < need {
			newCap = need
		}
		p.scratch = make([]byte, newCap)
		p.scratchRegrows.Add(1)
	}
	n := encode(p.scratch[:cap(p.scratch)], rec, &p.encCtx, p.mgr.cfg.Compression)

	ch := p.cur.Load()
	if ch.free() < n {
		p.sealCurrent(ch)
		ch = p.cur.Load()
		if ch.free() < n {
			panic(fmt.Sprintf("wal: record of %d bytes exceeds chunk capacity %d", n, ch.Region.Size()))
		}
		// The chunk rotation reset the compression context; re-encode so the
		// first record of the chunk is self-describing.
		n = encode(p.scratch[:cap(p.scratch)], rec, &p.encCtx, p.mgr.cfg.Compression)
	}
	if ch.pos == chunkHeaderSize {
		ch.firstGSN = gsn
	}
	ch.Region.Write(ch.pos, p.scratch[:n]) // publishes the new end atomically
	ch.pos += n
	ch.lastGSN = gsn
	p.curGSNHW.Store(uint64(gsn)) // published after the bytes
	p.lastGSN.Store(uint64(gsn))
	p.appendedBytes.Add(uint64(n))
	p.appendedRecords.Add(1)
	p.mgr.trace.Record(p.ID, obs.EvLogAppend, uint64(gsn), uint64(n))
	return gsn
}

// sealCurrent moves the full current chunk to the full queue (flushing it in
// PMem mode so that sealed chunks are always fully durable in stage 1),
// wakes the WAL writer, and installs a fresh chunk from the free list —
// waiting (a stall) if the writer has fallen behind. Owner-only.
func (p *Partition) sealCurrent(ch *Chunk) {
	if p.mgr.cfg.PersistMode == PersistPMem {
		ch.Region.FlushTo(ch.Region.Written())
		p.advanceFlushedGSN(ch.lastGSN)
	}
	p.fullC <- ch
	select {
	case p.pendingC <- struct{}{}:
	default:
	}
	var next *Chunk
	select {
	case next = <-p.freeC:
	default:
		p.sealStalls.Add(1)
		next = <-p.freeC
	}
	next.initAsCurrent(p.ID, ch.Seq+1)
	p.curGSNHW.Store(0)
	p.encCtx.reset()
	p.cur.Store(next)
}

// advanceFlushedGSN lifts the durability watermark monotonically.
func (p *Partition) advanceFlushedGSN(gsn base.GSN) {
	for {
		cur := p.flushedGSN.Load()
		if uint64(gsn) <= cur || p.flushedGSN.CompareAndSwap(cur, uint64(gsn)) {
			return
		}
	}
}

// FlushPMem issues a persist barrier over the published bytes of the
// current chunk (sealed chunks were flushed at seal time). This is the
// commit-time "flush my log" / "flush a remote log" primitive of §3.2 in
// PersistPMem mode, safe to call from any goroutine.
func (p *Partition) FlushPMem() {
	if p.mgr.cfg.PersistMode != PersistPMem {
		panic("wal: FlushPMem in DRAM persist mode")
	}
	// Load the GSN high-water mark before the published end: every record
	// with GSN ≤ g has its bytes below e (the owner publishes bytes before
	// the GSN), so after FlushTo(e) the watermark may advance to g. If the
	// current chunk rotated between the loads, the sealed chunk was flushed
	// at seal time, so g is durable either way.
	g := base.GSN(p.curGSNHW.Load())
	if lg := base.GSN(p.lastGSN.Load()); g == 0 {
		// Fresh current chunk: everything earlier was sealed and flushed.
		g = lg
	}
	ch := p.cur.Load()
	e := ch.Region.Written()
	ch.Region.FlushTo(e)
	p.advanceFlushedGSN(g)
}

// stageAll stages pending stage-1 data to the partition's stage-2 segment
// files and syncs them. Full (sealed) chunks are always staged, recycled
// onto the free list, and their buffers zeroed (§3.1); when partial is true
// the published prefix of the current chunk is staged as well (used by group
// commit in PersistDRAM mode). In DRAM mode the durability watermark
// advances accordingly. Any goroutine may call this; staging is serialized
// and processes chunks strictly in sequence order.
func (p *Partition) stageAll(partial bool) {
	p.stageMu.Lock()
	defer p.stageMu.Unlock()

	if p.mgr.cfg.DiscardStaging {
		// Benchmark-only: recycle chunks without SSD writes.
		for {
			select {
			case ch := <-p.fullC:
				ch.Region.Reset()
				p.freeC <- ch
				continue
			default:
			}
			break
		}
		return
	}

	snap := base.GSN(p.lastGSN.Load()) // taken before any staging below
	var maxDurable base.GSN
	staged := false
	// The owner may seal chunks concurrently; loop until the full queue
	// stays empty so a chunk sealed mid-stage is not skipped.
	for iter := 0; iter < 8; iter++ {
		drained := false
		for {
			select {
			case ch := <-p.fullC:
				p.stageChunkLocked(ch, ch.pos, ch.lastGSN)
				if ch.lastGSN > maxDurable {
					maxDurable = ch.lastGSN
				}
				staged = true
				drained = true
				// The chunk's payload writes are still queued in the
				// scheduler (they alias the region); recycle only after
				// the cycle barrier in syncSegmentsLocked.
				p.cycleRecycle = append(p.cycleRecycle, ch)
				continue
			default:
			}
			break
		}
		if partial {
			// Order matters (see FlushPMem): GSN high-water mark before end.
			g := base.GSN(p.curGSNHW.Load())
			ch := p.cur.Load()
			e := int(ch.Region.Written())
			if e > ch.stagedPos {
				p.stageChunkLocked(ch, e, g)
				staged = true
			}
			if g > maxDurable {
				maxDurable = g
			}
		}
		if len(p.fullC) == 0 && !drained || !partial {
			break
		}
	}
	if partial && maxDurable == 0 && len(p.fullC) == 0 {
		// No records were staged and none are pending. If the log did not
		// advance while we worked, everything up to the snapshot was
		// already durable (all earlier chunks staged, current chunk empty).
		ch := p.cur.Load()
		if base.GSN(p.lastGSN.Load()) == snap && int(ch.Region.Written()) <= ch.stagedPos {
			maxDurable = snap
		}
	}
	if staged || partial {
		p.syncSegmentsLocked()
		if p.mgr.cfg.PersistMode == PersistDRAM && maxDurable > 0 {
			p.advanceFlushedGSN(maxDurable)
		}
	}
}

// fullyStagedLocked reports whether no stage-1 bytes are pending (holding
// stageMu), i.e. every appended record is on SSD.
func (p *Partition) fullyStaged() bool {
	p.stageMu.Lock()
	defer p.stageMu.Unlock()
	if len(p.fullC) != 0 {
		return false
	}
	ch := p.cur.Load()
	return int(ch.Region.Written()) <= ch.stagedPos
}

// stageChunkLocked submits chunk bytes [stagedPos:upTo) as one block into
// the current segment file: two async writes (header, payload) whose
// handles join the staging cycle awaited by syncSegmentsLocked. The payload
// aliases stage-1 memory — published chunk bytes are immutable until the
// chunk is recycled, which the cycle barrier delays past completion.
// Caller holds stageMu.
func (p *Partition) stageChunkLocked(ch *Chunk, upTo int, maxGSN base.GSN) {
	if upTo <= ch.stagedPos {
		return
	}
	payload := ch.Region.Bytes()[ch.stagedPos:upTo]
	hdr := p.nextHdrLocked()
	binary.LittleEndian.PutUint32(hdr[0:], blockMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:], ch.Seq)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(ch.stagedPos))
	binary.LittleEndian.PutUint32(hdr[20:], 0)
	binary.LittleEndian.PutUint64(hdr[24:], uint64(maxGSN))

	seg := p.currentSegmentLocked()
	sched := p.mgr.sched
	p.cycle = append(p.cycle,
		sched.Write(iosched.ClassWAL, seg.file, hdr, seg.size, walRetries),
		sched.Write(iosched.ClassWAL, seg.file, payload, seg.size+blockHeaderSize, walRetries))
	if p.shipSeeded {
		p.shipRefs = append(p.shipRefs, shipBlockRef{
			seq: ch.Seq, off: ch.stagedPos, n: len(payload),
			file: seg.file, pos: seg.size + blockHeaderSize,
		})
	}
	seg.size += int64(blockHeaderSize + len(payload))
	if maxGSN > seg.maxGSN {
		seg.maxGSN = maxGSN
	}
	seg.dirty = true
	ch.stagedPos = upTo

	n := uint64(blockHeaderSize + len(payload))
	p.stagedBytes.Add(n)
	p.liveBytes.Add(n)
	p.mgr.onStaged(int(n))
}

func (p *Partition) currentSegmentLocked() *segmentInfo {
	if len(p.segs) > 0 {
		last := p.segs[len(p.segs)-1]
		if !last.closed {
			return last
		}
	}
	p.segSeq++
	name := p.segName(p.segSeq)
	seg := &segmentInfo{file: p.mgr.cfg.SSD.Open(name), name: name}
	p.segs = append(p.segs, seg)
	return seg
}

// nextHdrLocked hands out one block header from the slab. When the slab
// fills, a fresh one is allocated without copying: requests in flight keep
// the old array alive until they complete.
func (p *Partition) nextHdrLocked() []byte {
	if p.hdrUsed+blockHeaderSize > len(p.hdrSlab) {
		p.hdrSlab = make([]byte, 64*blockHeaderSize)
		p.hdrUsed = 0
	}
	h := p.hdrSlab[p.hdrUsed : p.hdrUsed+blockHeaderSize]
	p.hdrUsed = p.hdrUsed + blockHeaderSize
	return h
}

// syncSegmentsLocked completes one staging cycle: wait for every write
// submitted this cycle, recycle the chunks those writes aliased, then sync
// all dirty segments in parallel and wait for the barriers. Only after it
// returns may the caller advance flushedGSN — the WAL durability watermark
// must never run ahead of the device flush. A log write that still fails
// after retries is fatal: later commits may already be acked against GSNs
// behind the hole, so there is no sound way to skip it.
func (p *Partition) syncSegmentsLocked() {
	for _, r := range p.cycle {
		if err := r.Wait(); err != nil {
			panic(fmt.Sprintf("wal: stage-2 write failed: %v", err))
		}
	}
	p.cycle = p.cycle[:0]
	p.hdrUsed = 0
	for _, ch := range p.cycleRecycle {
		ch.Region.Reset()
		p.freeC <- ch
	}
	p.cycleRecycle = p.cycleRecycle[:0]

	p.syncReqs = p.syncReqs[:0]
	for _, seg := range p.segs {
		if seg.dirty {
			p.syncReqs = append(p.syncReqs,
				p.mgr.sched.Sync(iosched.ClassWAL, seg.file, walRetries))
			seg.dirty = false
		}
	}
	for _, r := range p.syncReqs {
		if err := r.Wait(); err != nil {
			panic(fmt.Sprintf("wal: segment sync failed: %v", err))
		}
	}
	p.syncReqs = p.syncReqs[:0]
	// Every indexed block is now past its sync barrier and shippable.
	p.shipDurable = len(p.shipRefs)
	// Rotate the active segment once it is large enough, so pruning can
	// remove whole files.
	if len(p.segs) > 0 {
		last := p.segs[len(p.segs)-1]
		if !last.closed && last.size >= int64(p.mgr.cfg.SegmentSize) {
			last.closed = true
		}
	}
}

// prune archives and removes closed segments whose records all have
// GSN < upTo — the log-truncation step of continuous checkpointing (§3.4).
func (p *Partition) prune(upTo base.GSN) {
	p.stageMu.Lock()
	defer p.stageMu.Unlock()
	kept := p.segs[:0]
	for i, seg := range p.segs {
		if seg.closed && seg.maxGSN < upTo && i == len(kept) {
			p.mgr.archiveSegment(seg)
			p.mgr.cfg.SSD.Remove(seg.name)
			p.prunedBytes.Add(uint64(seg.size))
			sub := uint64(seg.size)
			for {
				cur := p.liveBytes.Load()
				next := uint64(0)
				if cur > sub {
					next = cur - sub
				}
				if p.liveBytes.CompareAndSwap(cur, next) {
					break
				}
			}
			continue
		}
		kept = append(kept, seg)
	}
	p.segs = kept
}

// pendingStage1Bytes reports unstaged stage-1 bytes (full queue + current
// chunk), used by Close and by tests.
func (p *Partition) pendingStage1Bytes() int {
	n := 0
	ch := p.cur.Load()
	n += int(ch.Region.Written()) - ch.stagedPos
	// Note: chunks in fullC are counted approximately; this is advisory.
	n += len(p.fullC) * (ch.Region.Size() / 2)
	return n
}

// writerLoop is the per-partition background WAL writer of Figure 2: it
// picks up sealed chunks and stages them to SSD.
func (p *Partition) writerLoop(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-p.pendingC:
			p.stageAll(false)
		}
	}
}
