// Stage-3 tiering: the local archive namespace (archive/wal/pNNN/segNNNNNNNN,
// written by archiveSegment on prune) is continuously shipped to a cold-tier
// object store and trimmed from hot storage once the uploaded∧backed-up
// horizon passes it. The manager owns the upload path so it reuses the same
// pooled whole-segment copy buffer (and the ClassBackup I/O priority) as the
// local archive copy — tiering rides the prune path without new allocation
// or a competing I/O class. See DESIGN.md §9.
package wal

import (
	"encoding/binary"

	"repro/internal/base"
	"repro/internal/iosched"
	"repro/internal/obs"
)

// ArchiveSink is the cold-tier target for sealed archive segments —
// objstore.Client satisfies it. Put must be atomic (a concurrent reader of
// the store sees the old or the new blob, never a mix) and must copy data
// before returning: the manager hands it the pooled archive buffer.
type ArchiveSink interface {
	Put(name string, data []byte) error
}

// archEntry tracks one local archive segment's tiering state.
type archEntry struct {
	part     int // partition, -1 when not parseable
	maxGSN   base.GSN
	size     int64
	uploaded bool
}

// SegmentMaxGSN returns the highest block maxGSN in a raw stage-2/archive
// segment image (0 for an empty or unparseable image). Used when the upload
// path meets a segment it did not archive itself (previous generation,
// ArchiveAllLive copies) and needs its GSN bound for the trim horizon.
func SegmentMaxGSN(data []byte) base.GSN {
	var max base.GSN
	pos := 0
	for pos+blockHeaderSize <= len(data) {
		if binary.LittleEndian.Uint32(data[pos:]) != blockMagic {
			break
		}
		payload := int(binary.LittleEndian.Uint32(data[pos+4:]))
		if g := base.GSN(binary.LittleEndian.Uint64(data[pos+24:])); g > max {
			max = g
		}
		pos += blockHeaderSize + payload
	}
	return max
}

// recordArchivedLocked upserts the tiering index entry for a local archive
// file and, with a sink configured, uploads the segment image synchronously.
// Caller holds archiveMu and passes the segment bytes it already has in the
// pooled buffer. Upload failure is not fatal: the local archive copy is
// intact, media recovery is unaffected, and SyncArchive retries on the next
// uploader tick.
func (m *Manager) recordArchivedLocked(name string, data []byte, maxGSN base.GSN) {
	ent := m.archIdx[name]
	if ent == nil {
		ent = &archEntry{part: -1}
		if part, _, ok := parseSegName(name[len(ArchivePrefix):]); ok {
			ent.part = part
		}
		m.archIdx[name] = ent
	}
	ent.maxGSN = maxGSN
	ent.size = int64(len(data))
	ent.uploaded = false
	if m.cfg.ArchiveSink == nil {
		return
	}
	if err := m.cfg.ArchiveSink.Put(name, data); err != nil {
		m.upFails.Add(1)
		return
	}
	ent.uploaded = true
	m.upSegs.Add(1)
	m.upBytes.Add(uint64(len(data)))
	if ent.part >= 0 && ent.part < len(m.archCover) && maxGSN > m.archCover[ent.part] {
		m.archCover[ent.part] = maxGSN
	}
}

// SyncArchive reconciles the local archive namespace against the sink: any
// local archive segment not uploaded by this manager generation is read back
// (ClassBackup, pooled buffer) and uploaded. This retries failed prune-time
// uploads and sweeps in segments archived outside the prune path — previous
// generations found at startup and ArchiveAllLive copies made at recovery
// retire. Uploads are idempotent overwrites, so re-shipping a segment the
// store already holds is safe. Returns the first upload/read error (the
// uploader tick retries later).
func (m *Manager) SyncArchive() error {
	if m.cfg.ArchiveSink == nil {
		return nil
	}
	m.archiveMu.Lock()
	defer m.archiveMu.Unlock()
	var firstErr error
	for _, name := range m.cfg.SSD.List(ArchivePrefix) {
		if ent := m.archIdx[name]; ent != nil && ent.uploaded {
			continue
		}
		f := m.cfg.SSD.Open(name)
		size := int(f.Size())
		if cap(m.archiveBuf) < size {
			m.archiveBuf = make([]byte, size)
		}
		buf := m.archiveBuf[:size]
		n, err := m.sched.ReadWait(iosched.ClassBackup, f, buf, 0, walRetries)
		if err != nil {
			m.upFails.Add(1)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		m.recordArchivedLocked(name, buf[:n], SegmentMaxGSN(buf[:n]))
		if ent := m.archIdx[name]; ent != nil && !ent.uploaded && firstErr == nil {
			firstErr = errUploadFailed
		}
	}
	return firstErr
}

// ArchiveTail stages the stage-1 chunks to SSD, copies every live stage-2
// segment whose archive copy is missing or stale into the local archive
// (pooled buffer, ClassBackup), and ships the archive — extending
// CoveredGSN to the manager's MaxGSN for every active partition. Sealed
// segments reach the store continuously via the prune path; this bridges
// the still-open tail segment at backup and sync points, so the store
// alone covers history up to "now".
func (m *Manager) ArchiveTail() error {
	if m.cfg.ArchiveSink == nil {
		return nil
	}
	m.StageAllToSSD()
	m.archiveMu.Lock()
	for _, name := range LiveSegmentNames(m.cfg.SSD) {
		src := m.cfg.SSD.Open(name)
		dst := m.cfg.SSD.Open(ArchivePrefix + name)
		size := src.Size()
		if size == 0 || dst.Size() >= size {
			continue // empty, or the copy is current (segments append-only)
		}
		if cap(m.archiveBuf) < int(size) {
			m.archiveBuf = make([]byte, size)
		}
		buf := m.archiveBuf[:size]
		n, err := m.sched.ReadWait(iosched.ClassBackup, src, buf, 0, walRetries)
		if err == nil {
			err = m.sched.WriteWait(iosched.ClassBackup, dst, buf[:n], 0, walRetries)
		}
		if err == nil {
			err = m.sched.SyncWait(iosched.ClassBackup, dst, walRetries)
		}
		if err != nil {
			m.archiveMu.Unlock()
			return err
		}
		m.recordArchivedLocked(ArchivePrefix+name, buf[:n], SegmentMaxGSN(buf[:n]))
	}
	m.archiveMu.Unlock()
	return m.SyncArchive()
}

// errUploadFailed is SyncArchive's aggregate signal when a sink Put failed
// (the per-request error was already counted; the uploader only needs to
// know the sweep is not clean yet).
var errUploadFailed = &uploadError{}

type uploadError struct{}

func (*uploadError) Error() string { return "wal: archive upload failed; will retry" }

// TrimArchive deletes local archive segments that are both uploaded to the
// sink and at-or-below the backed-up horizon (the newest object-store backup
// chain's MaxGSN) — the bounded-hot-storage half of the tiering invariant:
// never trim past uploaded∧backed-up, so local media recovery keeps every
// segment a local backup could need and the store alone covers full history.
// Returns the number of segments removed.
func (m *Manager) TrimArchive(backedUp base.GSN) int {
	if m.cfg.ArchiveSink == nil || backedUp <= 0 {
		return 0
	}
	m.archiveMu.Lock()
	defer m.archiveMu.Unlock()
	if u := uint64(backedUp); u > m.archTrimGSN.Load() {
		m.archTrimGSN.Store(u)
	}
	removed := 0
	for name, ent := range m.archIdx {
		if !ent.uploaded || ent.maxGSN == 0 || ent.maxGSN > backedUp {
			continue
		}
		m.cfg.SSD.Remove(name)
		delete(m.archIdx, name)
		m.trimSegs.Add(1)
		m.trimBytes.Add(uint64(ent.size))
		removed++
	}
	return removed
}

// ArchiveInfo is the tiering view the engine exposes: the local (hot-tier)
// archive footprint, cumulative upload/trim traffic, and the horizons that
// govern PITR target selection and trimming.
type ArchiveInfo struct {
	// LocalSegments/LocalBytes is the archive still on the hot SSD.
	LocalSegments int
	LocalBytes    int64
	// Uploaded*/Trimmed* are cumulative for this manager generation.
	UploadedSegments uint64
	UploadedBytes    uint64
	TrimmedSegments  uint64
	TrimmedBytes     uint64
	UploadFailures   uint64
	// CoveredGSN is the uploaded-archive horizon: every partition that has
	// contributed archive segments has its full history up to this GSN in
	// the store, so any PITR target at-or-below it replays from cold
	// storage alone. Partitions that never sealed a segment (idle logs
	// carrying only lift witnesses) do not bound it.
	CoveredGSN base.GSN
	// TrimGSN is the highest backed-up horizon trimming has applied.
	TrimGSN base.GSN
}

// ArchiveInfo returns a snapshot of the tiering state.
func (m *Manager) ArchiveInfo() ArchiveInfo {
	info := ArchiveInfo{
		UploadedSegments: m.upSegs.Load(),
		UploadedBytes:    m.upBytes.Load(),
		TrimmedSegments:  m.trimSegs.Load(),
		TrimmedBytes:     m.trimBytes.Load(),
		UploadFailures:   m.upFails.Load(),
		TrimGSN:          base.GSN(m.archTrimGSN.Load()),
	}
	for _, name := range m.cfg.SSD.List(ArchivePrefix) {
		info.LocalSegments++
		info.LocalBytes += m.cfg.SSD.Open(name).Size()
	}
	m.archiveMu.Lock()
	for _, g := range m.archCover {
		if g == 0 {
			continue
		}
		if info.CoveredGSN == 0 || g < info.CoveredGSN {
			info.CoveredGSN = g
		}
	}
	m.archiveMu.Unlock()
	return info
}

// registerArchiveObs publishes the tiering instruments (called from
// registerObs when a registry is configured).
func (m *Manager) registerArchiveObs(reg *obs.Registry) {
	reg.CounterFunc("archive_uploaded_segments_total", m.upSegs.Load)
	reg.CounterFunc("archive_uploaded_bytes_total", m.upBytes.Load)
	reg.CounterFunc("archive_trimmed_segments_total", m.trimSegs.Load)
	reg.CounterFunc("archive_trimmed_bytes_total", m.trimBytes.Load)
	reg.CounterFunc("archive_upload_failures_total", m.upFails.Load)
	reg.GaugeFunc("archive_local_bytes", func() float64 {
		return float64(m.ArchiveInfo().LocalBytes)
	})
	reg.GaugeFunc("archive_covered_gsn", func() float64 {
		return float64(m.ArchiveInfo().CoveredGSN)
	})
}
