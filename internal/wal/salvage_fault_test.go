package wal

import (
	"testing"

	"repro/internal/base"
	"repro/internal/iosched"
)

// salvageFixture builds a crashed engine image whose durable log tail exists
// only in stage-1 chunks: appends small enough that no chunk seals, so
// nothing was staged to SSD before the crash.
func salvageFixture(t *testing.T) (cfg Config, sched *iosched.Scheduler, perPart int) {
	t.Helper()
	cfg, pm, ssd := testConfig(2)
	m := NewManager(cfg)
	for p := 0; p < 2; p++ {
		g := appendN(t, m, p, 10, base.TxnID(p+1))
		m.AcquireOwnership(p)
		m.CommitTxn(p, base.TxnID(p+1), g, true)
		m.ReleaseOwnership(p)
	}
	m.Close(false)
	pm.Crash(1)
	ssd.Crash()
	sched = iosched.New(iosched.Config{})
	t.Cleanup(sched.Close)
	return cfg, sched, 11 // 10 inserts + 1 commit per partition
}

func countScan(t *testing.T, cfg Config, sched *iosched.Scheduler, withPMem bool) map[int]int {
	t.Helper()
	pm := cfg.PMem
	if !withPMem {
		pm = nil
	}
	parts, _, _, err := ScanLog(cfg.SSD, pm, sched, 2)
	if err != nil {
		t.Fatalf("ScanLog: %v", err)
	}
	counts := make(map[int]int)
	for p, recs := range parts {
		counts[p] = len(recs)
	}
	return counts
}

// A failed salvage write must surface as an error so the engine aborts Open
// before releasing the stage-1 chunks — the partial salvage output must not
// make the log scan believe the tail is durable on SSD, and a retry after
// the fault clears must salvage everything.
func TestSalvageChunksWriteFaultDoesNotLoseTail(t *testing.T) {
	cfg, sched, perPart := salvageFixture(t)

	for p := 0; p < 2; p++ {
		if got := countScan(t, cfg, sched, true)[p]; got != perPart {
			t.Fatalf("baseline scan partition %d: %d records, want %d", p, got, perPart)
		}
	}

	sched.SetFault(iosched.ClassWAL, iosched.Fault{ErrRate: 1, Seed: 7})
	names, err := SalvageChunks(cfg.SSD, cfg.PMem, sched)
	if err == nil {
		t.Fatal("salvage under injected write errors must fail")
	}
	if len(names) != 0 {
		t.Fatalf("no partition could have been salvaged, got %v", names)
	}

	// The salvage horizon must not have advanced: with stage-1 intact the
	// full tail is still recoverable, and the SSD alone must NOT carry it
	// (which is exactly why the engine may not release the chunks now).
	// Faults are cleared first — they would also hit the scan's reads.
	sched.ClearFaults()
	for p := 0; p < 2; p++ {
		if got := countScan(t, cfg, sched, true)[p]; got != perPart {
			t.Fatalf("failed salvage corrupted recovery: partition %d has %d records, want %d", p, got, perPart)
		}
		if got := countScan(t, cfg, sched, false)[p]; got >= perPart {
			t.Fatalf("failed salvage claims durability: partition %d has %d records on SSD alone", p, got)
		}
	}

	names, err = SalvageChunks(cfg.SSD, cfg.PMem, sched)
	if err != nil {
		t.Fatalf("re-salvage after fault cleared: %v", err)
	}
	if len(names) != 2 {
		t.Fatalf("re-salvage wrote %d files, want 2", len(names))
	}
	// Now the chunks may be released: the SSD alone carries the full tail.
	for p := 0; p < 2; p++ {
		if got := countScan(t, cfg, sched, false)[p]; got != perPart {
			t.Fatalf("after salvage, SSD-only scan partition %d: %d records, want %d", p, got, perPart)
		}
	}
}

// Transient write errors are absorbed by the I/O scheduler's retry loop:
// salvage succeeds without the caller seeing an error.
func TestSalvageChunksRetriesTransientFaults(t *testing.T) {
	cfg, sched, perPart := salvageFixture(t)

	sched.SetFault(iosched.ClassWAL, iosched.Fault{ErrRate: 0.5, Seed: 99})
	names, err := SalvageChunks(cfg.SSD, cfg.PMem, sched)
	if err != nil {
		t.Fatalf("salvage with transient faults: %v", err)
	}
	if len(names) != 2 {
		t.Fatalf("salvaged %d partitions, want 2", len(names))
	}
	sched.ClearFaults()
	for p := 0; p < 2; p++ {
		if got := countScan(t, cfg, sched, false)[p]; got != perPart {
			t.Fatalf("SSD-only scan partition %d: %d records, want %d", p, got, perPart)
		}
	}
}
