package wal

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/base"
)

// TestAppendAliasingContract pins the Append aliasing contract the
// zero-allocation hot path depends on: one Record and one Arena are reused
// across every append, and the arena-backed slices are overwritten as soon
// as Append returns. If Append retained any reference instead of encoding
// synchronously into its scratch buffer, the durable log would see the
// mutated bytes.
func TestAppendAliasingContract(t *testing.T) {
	cfg, pm, ssd := testConfig(1)
	m := NewManager(cfg)
	m.AcquireOwnership(0)

	const n = 64
	var rec Record
	var arena Arena
	var gsn base.GSN
	wantKeys := make([][]byte, 0, n)
	wantVals := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		arena.Reset()
		rec.Reset()
		key := arena.Copy([]byte(fmt.Sprintf("key-%04d", i)))
		val := arena.Copy([]byte(fmt.Sprintf("value-%04d", i)))
		wantKeys = append(wantKeys, append([]byte(nil), key...))
		wantVals = append(wantVals, append([]byte(nil), val...))
		rec.Type, rec.Txn, rec.Tree, rec.Page = RecInsert, 7, 3, base.PageID(i+1)
		rec.Key, rec.After = key, val
		gsn = m.Append(0, &rec, gsn)
		// Contract: rec and its buffers are dead once Append returns.
		// Clobber everything the record referenced.
		for j := range key {
			key[j] = 0xEE
		}
		for j := range val {
			val[j] = 0xEE
		}
		rec.Key, rec.After = nil, nil
	}
	m.CommitTxn(0, 7, gsn, true)
	m.ReleaseOwnership(0)
	m.Close(true)

	pm.Crash(1)
	ssd.Crash()
	parts, _ := ReadLog(ssd, pm)
	got := 0
	for _, r := range parts[0] {
		if r.Type != RecInsert {
			continue
		}
		if got >= n {
			t.Fatalf("more insert records than appended: %d", got+1)
		}
		if !bytes.Equal(r.Key, wantKeys[got]) || !bytes.Equal(r.After, wantVals[got]) {
			t.Fatalf("record %d corrupted by post-Append mutation: key=%q val=%q",
				got, r.Key, r.After)
		}
		got++
	}
	if got != n {
		t.Fatalf("want %d insert records, got %d", n, got)
	}
}

// TestSegmentSeqResumesAcrossMixedSegments seeds the SSD with live and
// archived segment files from earlier engine generations (plus non-segment
// decoys) and checks that new staging continues strictly after the highest
// existing number — media recovery replays archived segments of all
// generations in name order, so a restarted engine must never reuse one.
func TestSegmentSeqResumesAcrossMixedSegments(t *testing.T) {
	cfg, _, ssd := testConfig(1)
	seeded := map[int]bool{2: true, 5: true}
	for _, name := range []string{
		"wal/p000/seg00000002",                 // live, older generation
		"wal/p000/seg00000005",                 // live, older generation
		ArchivePrefix + "wal/p000/seg00000009", // archived — holds the maximum
		"wal/p000/segBOGUS",                    // must not parse
		"wal/p000/marker",                      // unrelated file
		"wal/p001/seg00000042",                 // other partition — ignored
	} {
		// Truncate is durable immediately; seeding only needs Size > 0.
		ssd.Open(name).Truncate(1)
	}

	m := NewManager(cfg)
	gsn := appendN(t, m, 0, 500, 3)
	m.AcquireOwnership(0)
	m.CommitTxn(0, 3, gsn, true)
	m.ReleaseOwnership(0)
	waitFor(t, func() bool { return m.Stats().StagedBytes > 0 }, "staging")
	m.Close(true)

	fresh := 0
	for _, name := range ssd.List("wal/p000/") {
		n, ok := parseSegSuffix(name, "wal/p000/")
		if !ok || seeded[n] {
			continue
		}
		if n <= 9 {
			t.Fatalf("new segment %q reuses a number at or below the archived maximum 9", name)
		}
		fresh++
	}
	if fresh == 0 {
		t.Fatal("staging produced no new segment to check")
	}
}

// TestParseSegName covers the non-allocating replacement of the fmt.Sscanf
// scan in ReadLog.
func TestParseSegName(t *testing.T) {
	cases := []struct {
		name        string
		part, segNo int
		ok          bool
	}{
		{"wal/p000/seg00000001", 0, 1, true},
		{"wal/p017/seg00012345", 17, 12345, true},
		{"wal/p1/seg2", 1, 2, true},
		{"wal/p000/segBOGUS", 0, 0, false},
		{"wal/p000/seg", 0, 0, false},
		{"wal/pX/seg1", 0, 0, false},
		{"wal/p000/seg1/extra", 0, 0, false},
		{"other/p000/seg1", 0, 0, false},
	}
	for _, c := range cases {
		part, segNo, ok := parseSegName(c.name)
		if ok != c.ok || part != c.part || segNo != c.segNo {
			t.Errorf("parseSegName(%q) = (%d, %d, %v), want (%d, %d, %v)",
				c.name, part, segNo, ok, c.part, c.segNo, c.ok)
		}
	}
}
