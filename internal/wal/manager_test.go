package wal

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/base"
	"repro/internal/dev"
)

func testConfig(parts int) (Config, *dev.PMem, *dev.SSD) {
	pm := NewTestPMem()
	ssd := dev.NewSSD()
	return Config{
		Partitions:         parts,
		ChunkSize:          8 * 1024,
		ChunksPerPartition: 4,
		SegmentSize:        16 * 1024,
		PersistMode:        PersistPMem,
		Compression:        true,
		PMem:               pm,
		SSD:                ssd,
	}, pm, ssd
}

// NewTestPMem returns a PMem with deterministic full tearing (drop all
// unflushed lines) so durability assertions are exact.
func NewTestPMem() *dev.PMem {
	pm := dev.NewPMem()
	pm.TearSurviveProb = 0
	return pm
}

func appendN(t *testing.T, m *Manager, part, n int, txn base.TxnID) base.GSN {
	t.Helper()
	var gsn base.GSN
	m.AcquireOwnership(part)
	defer m.ReleaseOwnership(part)
	for i := 0; i < n; i++ {
		rec := Record{
			Type: RecInsert, Txn: txn, Tree: 2, Page: base.PageID(100 + i),
			Key:   []byte(fmt.Sprintf("key-%d-%d", part, i)),
			After: []byte(fmt.Sprintf("val-%d-%d", part, i)),
		}
		gsn = m.Append(part, &rec, gsn)
	}
	return gsn
}

func TestAppendAssignsMonotoneGSNs(t *testing.T) {
	cfg, _, _ := testConfig(2)
	m := NewManager(cfg)
	defer m.Close(false)
	m.AcquireOwnership(0)
	var last base.GSN
	for i := 0; i < 100; i++ {
		rec := Record{Type: RecInsert, Txn: 1, Tree: 1, Page: 1, Key: []byte("k"), After: []byte("v")}
		gsn := m.Append(0, &rec, 0)
		if gsn <= last {
			t.Fatalf("GSN not strictly increasing: %d after %d", gsn, last)
		}
		last = gsn
	}
	m.ReleaseOwnership(0)
}

func TestGSNProposalRespected(t *testing.T) {
	cfg, _, _ := testConfig(1)
	m := NewManager(cfg)
	defer m.Close(false)
	m.AcquireOwnership(0)
	defer m.ReleaseOwnership(0)
	rec := Record{Type: RecInsert, Txn: 1, Tree: 1, Page: 1, Key: []byte("k"), After: []byte("v")}
	gsn := m.Append(0, &rec, 5000)
	if gsn != 5001 {
		t.Fatalf("proposal 5000 should yield 5001, got %d", gsn)
	}
}

func TestImmediateCommitDurableAfterCrash(t *testing.T) {
	cfg, pm, ssd := testConfig(2)
	m := NewManager(cfg)
	gsn := appendN(t, m, 0, 10, 7)
	m.AcquireOwnership(0)
	commitGSN := m.CommitTxn(0, 7, gsn, true)
	m.ReleaseOwnership(0)
	m.Close(false)

	pm.Crash(1)
	ssd.Crash()
	parts, _ := ReadLog(ssd, pm)
	recs := parts[0]
	if len(recs) != 11 {
		t.Fatalf("want 11 records after crash, got %d", len(recs))
	}
	last := recs[len(recs)-1]
	if last.Type != RecCommit || last.GSN != commitGSN || last.Txn != 7 {
		t.Fatalf("commit record wrong: %+v", last)
	}
}

func TestUncommittedTailLostOnCrash(t *testing.T) {
	cfg, pm, ssd := testConfig(1)
	m := NewManager(cfg)
	gsn := appendN(t, m, 0, 5, 7)
	m.AcquireOwnership(0)
	m.CommitTxn(0, 7, gsn, true)
	// More records, never flushed.
	for i := 0; i < 3; i++ {
		rec := Record{Type: RecInsert, Txn: 8, Tree: 2, Page: 1, Key: []byte("x"), After: []byte("y")}
		gsn = m.Append(0, &rec, gsn)
	}
	m.ReleaseOwnership(0)
	m.Close(false)
	pm.Crash(1)
	ssd.Crash()
	parts, _ := ReadLog(ssd, pm)
	recs := parts[0]
	// 5 inserts + 1 commit survive; the unflushed tail must be gone (the
	// test PMem drops all unflushed lines).
	if len(recs) != 6 {
		t.Fatalf("want 6 records, got %d", len(recs))
	}
}

func TestTornTailStopsAtFirstInvalid(t *testing.T) {
	cfg, pm, ssd := testConfig(1)
	pm.TearSurviveProb = 0.5 // random line survival in the unflushed tail
	m := NewManager(cfg)
	gsn := appendN(t, m, 0, 3, 7)
	m.AcquireOwnership(0)
	m.CommitTxn(0, 7, gsn, true)
	g := base.GSN(0)
	for i := 0; i < 50; i++ {
		rec := Record{Type: RecInsert, Txn: 8, Tree: 2, Page: base.PageID(i), Key: []byte("unflushed"), After: []byte("data")}
		g = m.Append(0, &rec, g)
	}
	m.ReleaseOwnership(0)
	m.Close(false)
	pm.Crash(12345)
	ssd.Crash()
	parts, _ := ReadLog(ssd, pm)
	recs := parts[0]
	if len(recs) < 4 {
		t.Fatalf("flushed prefix lost: %d records", len(recs))
	}
	// Whatever tail survived must be a contiguous valid prefix: GSNs
	// strictly increasing, no gaps relative to append order.
	for i := 1; i < len(recs); i++ {
		if recs[i].GSN <= recs[i-1].GSN {
			t.Fatalf("record order broken at %d", i)
		}
	}
}

func TestChunkRotationAndStaging(t *testing.T) {
	cfg, pm, ssd := testConfig(1)
	m := NewManager(cfg)
	// Append enough to rotate chunks several times (8 KiB chunks).
	gsn := appendN(t, m, 0, 500, 3)
	m.AcquireOwnership(0)
	m.CommitTxn(0, 3, gsn, true)
	m.ReleaseOwnership(0)
	waitFor(t, func() bool { return m.Stats().StagedBytes > 0 }, "staging")
	m.Close(true)
	if got := m.Stats().SealStalls; got > 500 {
		t.Fatalf("too many seal stalls: %d", got)
	}
	pm.Crash(1)
	ssd.Crash()
	parts, _ := ReadLog(ssd, pm)
	if len(parts[0]) != 501 {
		t.Fatalf("want 501 records across chunks+segments, got %d", len(parts[0]))
	}
	// Records must be in append order with no duplicates (staging dedupe).
	seen := make(map[base.GSN]bool)
	for _, r := range parts[0] {
		if seen[r.GSN] {
			t.Fatalf("duplicate GSN %d", r.GSN)
		}
		seen[r.GSN] = true
	}
}

func TestRemoteFlushMakesOtherLogDurable(t *testing.T) {
	cfg, pm, ssd := testConfig(2)
	m := NewManager(cfg)
	// Partition 1 has unflushed records.
	appendN(t, m, 1, 5, 9)
	// Partition 0 commits with needsRemoteFlush → all logs flushed first.
	g := appendN(t, m, 0, 1, 4)
	m.AcquireOwnership(0)
	m.CommitTxn(0, 4, g, false)
	m.ReleaseOwnership(0)
	m.Close(false)
	pm.Crash(1)
	ssd.Crash()
	parts, _ := ReadLog(ssd, pm)
	if len(parts[1]) != 5 {
		t.Fatalf("remote flush did not persist partition 1: %d records", len(parts[1]))
	}
}

func TestMinFlushedGSNAdvances(t *testing.T) {
	cfg, _, _ := testConfig(2)
	m := NewManager(cfg)
	defer m.Close(false)
	g0 := appendN(t, m, 0, 3, 1)
	appendN(t, m, 1, 3, 2)
	m.AcquireOwnership(0)
	m.CommitTxn(0, 1, g0, false) // flush-all
	m.ReleaseOwnership(0)
	min := m.MinFlushedGSN()
	if min == 0 {
		t.Fatal("MinFlushedGSN should advance after flush-all commit")
	}
}

func TestIdlePartitionLifted(t *testing.T) {
	cfg, _, _ := testConfig(4)
	m := NewManager(cfg)
	defer m.Close(false)
	// Only partition 0 is active; 1..3 idle. The lift ticker must keep
	// MinFlushedGSN close to the active log's GSN.
	g := appendN(t, m, 0, 50, 1)
	m.AcquireOwnership(0)
	m.CommitTxn(0, 1, g, true)
	m.ReleaseOwnership(0)
	waitFor(t, func() bool { return m.MinFlushedGSN() >= g }, "idle lift")
}

func TestGroupCommitAcks(t *testing.T) {
	cfg, _, _ := testConfig(2)
	cfg.GroupCommit = true
	cfg.GroupCommitInterval = 200 * time.Microsecond
	m := NewManager(cfg)
	defer m.Close(false)
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			g := appendN(t, m, p, 5, base.TxnID(p+1))
			m.AcquireOwnership(p)
			m.CommitTxn(p, base.TxnID(p+1), g, false)
			m.ReleaseOwnership(p)
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("group commit never acknowledged")
	}
	// The marker write is asynchronous (off the ack path); it must still
	// arrive shortly after the acks.
	waitFor(t, func() bool { return m.StableGSN() != 0 }, "async stable marker")
}

func TestGroupCommitDRAMSurvivesCrashViaSSD(t *testing.T) {
	cfg, pm, ssd := testConfig(1)
	cfg.PersistMode = PersistDRAM
	cfg.GroupCommit = true
	m := NewManager(cfg)
	g := appendN(t, m, 0, 10, 5)
	m.AcquireOwnership(0)
	commitGSN := m.CommitTxn(0, 5, g, false)
	m.ReleaseOwnership(0)
	m.Close(false)
	// DRAM stage 1 dies completely.
	pm.CrashVolatile()
	ssd.Crash()
	parts, stable := ReadLog(ssd, pm)
	if stable < commitGSN {
		t.Fatalf("stable marker %d below acked commit %d", stable, commitGSN)
	}
	recs := parts[0]
	if len(recs) != 11 || recs[len(recs)-1].Type != RecCommit {
		t.Fatalf("acked group commit lost: %d records", len(recs))
	}
}

func TestPruneRemovesOldSegments(t *testing.T) {
	cfg, _, ssd := testConfig(1)
	cfg.SegmentSize = 4 * 1024
	m := NewManager(cfg)
	defer m.Close(false)
	g := appendN(t, m, 0, 2000, 3)
	m.AcquireOwnership(0)
	m.CommitTxn(0, 3, g, true)
	m.ReleaseOwnership(0)
	waitFor(t, func() bool { return len(ssd.List("wal/p000/")) > 2 }, "segments")
	before := m.LiveWALBytes()
	m.Prune(g) // everything below the last GSN prunable
	after := m.LiveWALBytes()
	if after >= before {
		t.Fatalf("prune did not shrink WAL: %d -> %d", before, after)
	}
	if m.Stats().ArchivedBytes == 0 {
		t.Fatal("pruned segments not accounted as archived")
	}
}

func TestPruneKeepsRecordsAboveHorizon(t *testing.T) {
	cfg, pm, ssd := testConfig(1)
	cfg.SegmentSize = 2 * 1024
	m := NewManager(cfg)
	g := appendN(t, m, 0, 500, 3)
	m.AcquireOwnership(0)
	commitGSN := m.CommitTxn(0, 3, g, true)
	m.ReleaseOwnership(0)
	m.Close(true)
	m.Prune(commitGSN - 400)
	pm.Crash(1)
	ssd.Crash()
	parts, _ := ReadLog(ssd, pm)
	var minGSN base.GSN = ^base.GSN(0)
	var maxGSN base.GSN
	for _, r := range parts[0] {
		if r.GSN < minGSN {
			minGSN = r.GSN
		}
		if r.GSN > maxGSN {
			maxGSN = r.GSN
		}
	}
	if maxGSN != commitGSN {
		t.Fatalf("newest record lost by prune: max=%d want %d", maxGSN, commitGSN)
	}
	if minGSN >= commitGSN-400 {
		t.Fatalf("prune horizon violated: no records below %d kept, min=%d (segment granularity should keep some)", commitGSN-400, minGSN)
	}
}

func TestStatsCounters(t *testing.T) {
	cfg, _, _ := testConfig(1)
	m := NewManager(cfg)
	defer m.Close(false)
	g := appendN(t, m, 0, 10, 1)
	m.AcquireOwnership(0)
	m.CommitTxn(0, 1, g, true)
	m.CommitTxn(0, 2, g+1, false)
	m.ReleaseOwnership(0)
	s := m.Stats()
	if s.AppendedRecords != 12 {
		t.Fatalf("AppendedRecords=%d want 12", s.AppendedRecords)
	}
	if s.CommitsRFA != 1 || s.CommitsFull != 1 {
		t.Fatalf("commit counters: rfa=%d full=%d", s.CommitsRFA, s.CommitsFull)
	}
	if s.AppendedBytes == 0 {
		t.Fatal("AppendedBytes zero")
	}
}

func TestStripUndoImagesReducesVolume(t *testing.T) {
	run := func(strip bool) uint64 {
		cfg, _, _ := testConfig(1)
		cfg.StripUndoImages = strip
		m := NewManager(cfg)
		defer m.Close(false)
		m.AcquireOwnership(0)
		defer m.ReleaseOwnership(0)
		g := base.GSN(0)
		for i := 0; i < 200; i++ {
			rec := Record{
				Type: RecUpdate, Txn: 1, Tree: 1, Page: 1, Key: []byte("key"),
				Before: []byte("old-value-AAAA"), After: []byte("new-value-BBBB"),
			}
			g = m.Append(0, &rec, g)
		}
		return m.Stats().AppendedBytes
	}
	with, without := run(false), run(true)
	if without >= with {
		t.Fatalf("stripping undo images should shrink the log: with=%d without=%d", with, without)
	}
}

func TestCompressionReducesVolume(t *testing.T) {
	run := func(compress bool) uint64 {
		cfg, _, _ := testConfig(1)
		cfg.Compression = compress
		m := NewManager(cfg)
		defer m.Close(false)
		m.AcquireOwnership(0)
		defer m.ReleaseOwnership(0)
		g := base.GSN(0)
		for i := 0; i < 200; i++ {
			rec := Record{Type: RecInsert, Txn: 1, Tree: 1, Page: 1, Key: []byte("key"), After: []byte("value")}
			g = m.Append(0, &rec, g)
		}
		return m.Stats().AppendedBytes
	}
	on, off := run(true), run(false)
	if on >= off {
		t.Fatalf("compression should shrink the log: on=%d off=%d", on, off)
	}
}

func TestConcurrentAppendAndRemoteFlush(t *testing.T) {
	cfg, _, _ := testConfig(2)
	m := NewManager(cfg)
	defer m.Close(false)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // owner of partition 1 keeps appending
		defer wg.Done()
		m.AcquireOwnership(1)
		defer m.ReleaseOwnership(1)
		g := base.GSN(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := Record{Type: RecInsert, Txn: 2, Tree: 1, Page: 9, Key: []byte("k"), After: []byte("v")}
			g = m.Append(1, &rec, g)
		}
	}()
	// Partition 0 repeatedly commits with remote flushes.
	m.AcquireOwnership(0)
	g := base.GSN(0)
	for i := 0; i < 200; i++ {
		rec := Record{Type: RecInsert, Txn: 1, Tree: 1, Page: 1, Key: []byte("k"), After: []byte("v")}
		g = m.Append(0, &rec, g)
		m.CommitTxn(0, 1, g, false)
	}
	m.ReleaseOwnership(0)
	close(stop)
	wg.Wait()
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
