package wal

// Arena is a growable byte arena for the zero-allocation transaction hot
// path: callers copy transient byte slices (keys, before-images, diff
// regions) into it and slice the copies out. The arena is owned by a single
// goroutine (a session pinned to a worker, §3.1) and reused across
// transactions — Reset at transaction begin rewinds it without releasing
// the backing array, so steady state performs no heap allocations.
//
// Slices returned by Copy stay valid after later Copy calls even when the
// backing array grows: Go's append copies into a fresh array and the old
// one remains alive while the returned slices reference it. The contents
// of a returned slice are never touched again by the arena; callers may
// mutate them in place (e.g. the UpdateFunc scratch value).
type Arena struct {
	buf []byte
}

// Reset rewinds the arena, invalidating all slices handed out since the
// last Reset. Capacity is retained.
func (a *Arena) Reset() { a.buf = a.buf[:0] }

// Copy appends b to the arena and returns the stored copy. A nil or empty
// input returns nil (preserving the nil-ness conventions of undo images:
// nil Before means "nothing to restore"). b may itself alias the arena.
func (a *Arena) Copy(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	n := len(a.buf)
	a.buf = append(a.buf, b...)
	return a.buf[n : n+len(b) : n+len(b)]
}

// Len returns the number of bytes currently stored (tests, stats).
func (a *Arena) Len() int { return len(a.buf) }
