package wal

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/base"
	"repro/internal/sys"
)

func roundTrip(t *testing.T, rec Record, compress bool) Record {
	t.Helper()
	var enc, dec codecContext
	buf := make([]byte, EncodedSize(&rec))
	n := encode(buf, &rec, &enc, compress)
	got, m, err := decode(buf[:n], &dec)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if m != n {
		t.Fatalf("size mismatch: encoded %d decoded %d", n, m)
	}
	return got
}

func recordsEqual(a, b Record) bool {
	norm := func(r Record) Record {
		if len(r.Key) == 0 {
			r.Key = nil
		}
		if len(r.Before) == 0 {
			r.Before = nil
		}
		if len(r.After) == 0 {
			r.After = nil
		}
		if len(r.Payload) == 0 {
			r.Payload = nil
		}
		if len(r.Diffs) == 0 {
			r.Diffs = nil
		}
		return r
	}
	return reflect.DeepEqual(norm(a), norm(b))
}

func TestRecordRoundTripBasic(t *testing.T) {
	rec := Record{
		Type:   RecInsert,
		Txn:    42,
		GSN:    1234,
		Tree:   7,
		Page:   99,
		Key:    []byte("key-1"),
		After:  []byte("value-1"),
		Before: nil,
	}
	got := roundTrip(t, rec, true)
	if !recordsEqual(rec, got) {
		t.Fatalf("mismatch:\n got %+v\nwant %+v", got, rec)
	}
}

func TestRecordRoundTripAllTypes(t *testing.T) {
	recs := []Record{
		{Type: RecInsert, Txn: 1, Tree: 2, Page: 3, Key: []byte("k"), After: []byte("v")},
		{Type: RecUpdate, Txn: 1, Tree: 2, Page: 3, Key: []byte("k"), Diffs: []Diff{{Off: 2, Before: []byte("ab"), After: []byte("xy")}}},
		{Type: RecUpdate, Txn: 1, Tree: 2, Page: 3, Key: []byte("k"), Before: []byte("old"), After: []byte("newer")},
		{Type: RecDelete, Txn: 1, Tree: 2, Page: 3, Key: []byte("k"), Before: []byte("v")},
		{Type: RecFormatPage, Tree: 2, Page: 4, Aux: 1, Payload: bytes.Repeat([]byte("x"), 500)},
		{Type: RecInnerInsert, Tree: 2, Page: 5, Key: []byte("sep"), Aux: 77},
		{Type: RecInnerRemove, Tree: 2, Page: 5, Key: []byte("sep")},
		{Type: RecSetRoot, Tree: 2, Page: 6, Aux: 88},
		{Type: RecCommit, Txn: 9, Aux: 1},
		{Type: RecAbortEnd, Txn: 9},
		{Type: RecValue, Txn: 9, Tree: 2, Key: []byte("k"), After: []byte("v")},
	}
	for i, rec := range recs {
		rec.GSN = base.GSN(100 + i)
		got := roundTrip(t, rec, true)
		if !recordsEqual(rec, got) {
			t.Fatalf("record %d (%v) mismatch:\n got %+v\nwant %+v", i, rec.Type, got, rec)
		}
	}
}

func TestRecordCompressionElision(t *testing.T) {
	var ctx codecContext
	buf := make([]byte, 4096)
	r1 := Record{Type: RecInsert, Txn: 5, GSN: 1, Tree: 2, Page: 3, Key: []byte("a"), After: []byte("1")}
	n1 := encode(buf, &r1, &ctx, true)
	r2 := Record{Type: RecInsert, Txn: 5, GSN: 2, Tree: 2, Page: 3, Key: []byte("b"), After: []byte("2")}
	n2 := encode(buf[n1:], &r2, &ctx, true)
	if n2 >= n1 {
		t.Fatalf("same-page/same-txn record should be smaller: first=%d second=%d", n1, n2)
	}
	// Decodes correctly in sequence.
	var dctx codecContext
	got1, m1, err := decode(buf, &dctx)
	if err != nil {
		t.Fatal(err)
	}
	got2, _, err := decode(buf[m1:], &dctx)
	if err != nil {
		t.Fatal(err)
	}
	if got1.Page != 3 || got2.Page != 3 || got2.Txn != 5 || got2.Tree != 2 {
		t.Fatalf("elided fields wrong: %+v %+v", got1, got2)
	}
}

func TestRecordNoCompression(t *testing.T) {
	var ctx codecContext
	buf := make([]byte, 4096)
	r1 := Record{Type: RecInsert, Txn: 5, GSN: 1, Tree: 2, Page: 3, Key: []byte("a"), After: []byte("1")}
	n1 := encode(buf, &r1, &ctx, false)
	r2 := r1
	r2.GSN = 2
	n2 := encode(buf[n1:], &r2, &ctx, false)
	if n1 != n2 {
		t.Fatalf("uncompressed identical records must have equal size: %d vs %d", n1, n2)
	}
}

func TestRecordChecksumRejectsCorruption(t *testing.T) {
	var enc codecContext
	rec := Record{Type: RecInsert, Txn: 1, GSN: 9, Tree: 1, Page: 1, Key: []byte("kk"), After: []byte("vv")}
	buf := make([]byte, EncodedSize(&rec))
	n := encode(buf, &rec, &enc, true)
	for i := 8; i < n; i++ {
		buf[i] ^= 0x40
		var dec codecContext
		if _, _, err := decode(buf[:n], &dec); err == nil {
			t.Fatalf("corruption at byte %d undetected", i)
		}
		buf[i] ^= 0x40
	}
}

func TestRecordDecodeTruncated(t *testing.T) {
	var enc codecContext
	rec := Record{Type: RecInsert, Txn: 1, GSN: 9, Tree: 1, Page: 1, Key: []byte("key"), After: []byte("value")}
	buf := make([]byte, EncodedSize(&rec))
	n := encode(buf, &rec, &enc, true)
	for cut := 0; cut < n; cut++ {
		var dec codecContext
		if _, _, err := decode(buf[:cut], &dec); err == nil {
			t.Fatalf("truncation to %d bytes undetected", cut)
		}
	}
}

func TestRecordDecodeZeros(t *testing.T) {
	var dec codecContext
	if _, _, err := decode(make([]byte, 1024), &dec); err != ErrEndOfChunk {
		t.Fatalf("zeroed buffer: err=%v", err)
	}
}

func TestSamePageFlagRequiresContext(t *testing.T) {
	// A record whose samePage flag is set must not decode without context
	// (fresh chunk): the flag only appears after an earlier record.
	var enc codecContext
	r1 := Record{Type: RecInsert, Txn: 1, GSN: 1, Tree: 2, Page: 3, Key: []byte("a"), After: []byte("1")}
	buf := make([]byte, 4096)
	n1 := encode(buf, &r1, &enc, true)
	r2 := r1
	r2.GSN = 2
	n2 := encode(buf[n1:], &r2, &enc, true)
	var dec codecContext
	if _, _, err := decode(buf[n1:n1+n2], &dec); err == nil {
		t.Fatal("contextless decode of elided record must fail")
	}
}

func TestComputeDiffs(t *testing.T) {
	before := []byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")
	after := append([]byte(nil), before...)
	after[3] = 'X'
	after[25] = 'Y'
	diffs := ComputeDiffs(before, after)
	if len(diffs) != 2 {
		t.Fatalf("want 2 regions, got %d: %+v", len(diffs), diffs)
	}
	redo := append([]byte(nil), before...)
	ApplyDiffs(redo, diffs)
	if !bytes.Equal(redo, after) {
		t.Fatalf("ApplyDiffs wrong: %q", redo)
	}
	undo := append([]byte(nil), after...)
	RevertDiffs(undo, diffs)
	if !bytes.Equal(undo, before) {
		t.Fatalf("RevertDiffs wrong: %q", undo)
	}
}

func TestComputeDiffsMergesNearbyRegions(t *testing.T) {
	before := bytes.Repeat([]byte("a"), 40)
	after := append([]byte(nil), before...)
	after[10] = 'X'
	after[12] = 'Y' // within merge gap
	diffs := ComputeDiffs(before, after)
	if len(diffs) != 1 {
		t.Fatalf("adjacent changes should merge: %+v", diffs)
	}
}

func TestComputeDiffsFallbacks(t *testing.T) {
	if ComputeDiffs([]byte("abc"), []byte("abcd")) != nil {
		t.Fatal("length change must fall back to full images")
	}
	// Everything changed: diffing saves nothing.
	if d := ComputeDiffs([]byte("aaaaaaaa"), []byte("bbbbbbbb")); d != nil {
		t.Fatalf("full change should fall back, got %+v", d)
	}
	if ComputeDiffs(nil, nil) != nil {
		t.Fatal("empty values")
	}
}

func TestComputeDiffsProperty(t *testing.T) {
	f := func(seed uint64, nChanges uint8) bool {
		r := sys.NewRand(seed)
		before := make([]byte, 64)
		for i := range before {
			before[i] = byte(r.Uint64())
		}
		after := append([]byte(nil), before...)
		for i := 0; i < int(nChanges%16); i++ {
			after[r.Intn(len(after))] ^= byte(r.Uint64() | 1)
		}
		diffs := ComputeDiffs(before, after)
		if diffs == nil {
			return true // fallback to full images is always allowed
		}
		redo := append([]byte(nil), before...)
		ApplyDiffs(redo, diffs)
		undo := append([]byte(nil), after...)
		RevertDiffs(undo, diffs)
		return bytes.Equal(redo, after) && bytes.Equal(undo, before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(txn uint64, tree, page uint64, key, val []byte) bool {
		if len(key) > 1000 {
			key = key[:1000]
		}
		rec := Record{
			Type: RecInsert, Txn: base.TxnID(txn), GSN: 5,
			Tree: base.TreeID(tree), Page: base.PageID(page),
			Key: key, After: val,
		}
		var enc, dec codecContext
		buf := make([]byte, EncodedSize(&rec))
		n := encode(buf, &rec, &enc, true)
		got, _, err := decode(buf[:n], &dec)
		if err != nil {
			return false
		}
		return recordsEqual(rec, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneRecordIndependence(t *testing.T) {
	rec := Record{Type: RecUpdate, Key: []byte("k"), Diffs: []Diff{{Off: 0, Before: []byte("a"), After: []byte("b")}}}
	c := CloneRecord(&rec)
	rec.Key[0] = 'X'
	rec.Diffs[0].After[0] = 'X'
	if c.Key[0] != 'k' || c.Diffs[0].After[0] != 'b' {
		t.Fatal("clone shares memory with original")
	}
}

func TestStripUndoDiffRoundTrip(t *testing.T) {
	rec := Record{
		Type: RecUpdate, Txn: 1, GSN: 1, Tree: 1, Page: 1, Key: []byte("k"),
		Diffs: []Diff{{Off: 3, Before: nil, After: []byte("zz")}},
	}
	got := roundTrip(t, rec, true)
	if got.Diffs[0].Before != nil || !bytes.Equal(got.Diffs[0].After, []byte("zz")) {
		t.Fatalf("after-only diff mismatch: %+v", got.Diffs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RevertDiffs must panic without before images")
		}
	}()
	RevertDiffs(make([]byte, 10), got.Diffs)
}
