package wal

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/base"
	"repro/internal/dev"
	"repro/internal/iosched"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Config configures the distributed WAL.
type Config struct {
	// Partitions is the number of per-worker logs (§3.1). Each session is
	// pinned to one.
	Partitions int
	// ChunkSize is the stage-1 chunk size in bytes (paper: 20 MB; scaled
	// down here).
	ChunkSize int
	// ChunksPerPartition is the length of the circular chunk list (paper: 5).
	ChunksPerPartition int
	// SegmentSize is the stage-2 segment file rotation threshold; pruning
	// removes whole segments.
	SegmentSize int
	// PersistMode selects stage-1 placement (PMem or DRAM, §3.2).
	PersistMode PersistMode
	// GroupCommit enables the passive group-commit protocol [52]; required
	// for durability in PersistDRAM mode unless SyncCommit is set.
	GroupCommit bool
	// GroupCommitInterval pins the flush epoch to a fixed length (SiloR
	// epochs, the interval ablation, and the centralized baseline's tick).
	// When 0 the decentralized flushers adapt their epoch per partition
	// between epochMinDefault and epochMaxDefault; the centralized baseline
	// defaults to a fixed 100µs tick.
	GroupCommitInterval time.Duration
	// CentralizedCommit retains the previous single-loop group committer
	// (one tick loop flushing all partitions serially, synchronous marker
	// write on the ack path, one global waiter queue) as the ablation
	// baseline for the decentralized commit subsystem in commit.go.
	CentralizedCommit bool
	// SyncCommit (PersistDRAM only) makes every commit stage+sync its log
	// synchronously — the ARIES-without-group-commit behaviour.
	SyncCommit bool
	// Compression enables same-page/same-txn field elision (§3.8).
	Compression bool
	// StripUndoImages drops before-images from user records (benchmark for
	// §3.6's undo-volume estimate; recovery undo is impossible with it).
	StripUndoImages bool
	// Archive copies pruned segments to the archive namespace (stage 3)
	// before deleting them.
	Archive bool
	// ArchiveSink, when set (and Archive is on), additionally ships every
	// sealed archive segment to a cold-tier object store: synchronously on
	// the prune path (reusing the pooled copy buffer already in hand) and
	// via SyncArchive retries for anything the prune path missed. See
	// archive.go.
	ArchiveSink ArchiveSink
	// CommitFlushDisabled appends commit records without any flush or
	// group-commit wait. Benchmark-only (Table 1 rows 2-3: log records are
	// created/staged but commits are not made durable).
	CommitFlushDisabled bool
	// DiscardStaging recycles full chunks without writing them to SSD.
	// Benchmark-only (Table 1 row 2: record creation cost in isolation).
	DiscardStaging bool

	// GSNFloor makes every GSN of this log generation exceed it. The engine
	// passes the previous generation's maximum GSN so GSNs stay globally
	// monotone across restarts — which keeps the group-commit stable marker
	// and all persisted page GSNs valid in the new generation.
	GSNFloor base.GSN
	// ChunkSeqFloor makes every stage-1 chunk sequence number of this log
	// generation exceed it. The engine passes the maximum seq observed in
	// the replayed log: recovery merges a chunk's sources (stage-1 copy,
	// staged blocks, salvaged image) by seq, which is only sound while no
	// two generations that can coexist in a scan share a seq.
	ChunkSeqFloor uint64

	PMem *dev.PMem
	SSD  *dev.SSD

	// Sched is the I/O scheduler all stage-2 and archive traffic goes
	// through. When nil the manager creates (and owns) a private one, so
	// standalone managers in unit tests keep working.
	Sched *iosched.Scheduler

	// OnStaged is invoked with the number of bytes each time log data is
	// staged to stage 2 — the continuous checkpointer's trigger (§3.4).
	OnStaged func(bytes int)

	// Obs, when set, absorbs the log's instruments into the central metric
	// registry and enables the per-stage commit-latency histograms
	// (append / queue / flush / ack).
	Obs *obs.Registry
	// Trace, when set, receives log and commit lifecycle events. Partition
	// i records on ring i.
	Trace *obs.Recorder
}

// walRetries is the retry budget for log-device I/O. The log is the
// engine's durability root: an exhausted budget is treated as a failed
// device and is fatal (see syncSegmentsLocked).
const walRetries = 64

func (c *Config) fillDefaults() {
	if c.Partitions <= 0 {
		c.Partitions = 1
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 256 * 1024
	}
	if c.ChunksPerPartition < 2 {
		c.ChunksPerPartition = 5
	}
	if c.SegmentSize <= 0 {
		c.SegmentSize = 1 << 20
	}
	if c.CentralizedCommit && c.GroupCommitInterval <= 0 {
		c.GroupCommitInterval = 100 * time.Microsecond
	}
}

// commitWaiter is a transaction parked in a commit-waiter queue; the flusher
// (or centralized committer) acknowledges it once the commit record is
// durable — through onDurable, or by a send on ch for synchronous waits
// (pooled, see WaitCommitDurable). Passive group commit [52] works precisely
// because the worker thread does NOT wait here — it proceeds to the next
// transaction and the acknowledgement arrives asynchronously.
type commitWaiter struct {
	gsn       base.GSN
	part      int
	rfaSafe   bool
	onDurable func()
	ch        chan struct{}
	enq       time.Time // enqueue instant, for the commit-wait histograms
}

// Manager is the two-stage distributed log (Figure 2) plus the commit
// protocols of §3.2. It implements the durability side of the engine; the
// RFA decision itself (whether a commit needs remote flushes) is made by the
// transaction layer and passed in.
type Manager struct {
	cfg   Config
	parts []*Partition

	// ownerMu[i] serializes ownership of partition i: the pinned session
	// holds it for the duration of each transaction; between transactions
	// the background lift ticker may grab it to flush the partition and
	// lift its GSN watermarks, which keeps idle logs from stalling group
	// commit, RFA, and log truncation.
	ownerMu []sync.Mutex

	stop chan struct{}
	wg   sync.WaitGroup

	// liftLoop runs on its own stop channel so Close can quiesce it first:
	// a final lift racing the drain could append a lift record to a
	// partition the drain already staged.
	liftStop chan struct{}
	liftWG   sync.WaitGroup

	// Centralized baseline state (Config.CentralizedCommit).
	gcNotify  chan struct{}
	gcMu      sync.Mutex
	gcQueue   []commitWaiter
	gcScratch []commitWaiter

	// Decentralized commit state (see commit.go): per-partition waiter
	// shards and flusher kick channels, the remote-flush waiter queue, and
	// the lock-free aggregated MinFlushedGSN all acknowledgements against
	// the global horizon use.
	shards    []waiterShard
	flushKick []chan struct{}
	horizon   horizonAgg
	aggMin    atomic.Uint64

	// epochMin/epochMax bound the adaptive flush epoch (equal when the
	// interval is pinned by Config.GroupCommitInterval).
	epochMin time.Duration
	epochMax time.Duration

	// Commit-wait latency split by acknowledgement path.
	histRFA    *metrics.Histogram
	histRemote *metrics.Histogram

	// Per-stage commit-latency split (nil unless Config.Obs is set):
	// commit-record append, enqueue→flush-start wait, the flush itself,
	// and flush-end→acknowledgement.
	histAppend *metrics.Histogram
	histQueue  *metrics.Histogram
	histFlush  *metrics.Histogram
	histAck    *metrics.Histogram

	trace *obs.Recorder

	// stableGSN is the persisted stable horizon: every record (in any
	// partition) with GSN ≤ stableGSN is durable and covered by the marker
	// file. The decentralized committer acknowledges at the (possibly
	// higher) in-memory aggregate and persists the marker asynchronously;
	// recovery re-derives at least the acknowledged horizon from the logs.
	stableGSN  atomic.Uint64
	markerFile *dev.File
	markerKick chan struct{}
	markerBuf  [8]byte
	markerErrC chan error

	gsnFloor atomic.Uint64 // lift hint; new records always exceed it
	closed   atomic.Bool

	sched      *iosched.Scheduler
	ownSched   bool
	archiveMu  sync.Mutex
	archiveBuf []byte // pooled whole-segment copy buffer, guarded by archiveMu

	// Cold-tier state (archive.go), guarded by archiveMu except the
	// atomic counters.
	archIdx     map[string]*archEntry
	archCover   []base.GSN // per-partition uploaded-archive horizon
	archTrimGSN atomic.Uint64
	upSegs      atomic.Uint64
	upBytes     atomic.Uint64
	trimSegs    atomic.Uint64
	trimBytes   atomic.Uint64
	upFails     atomic.Uint64

	archived    atomic.Uint64
	commitsRFA  atomic.Uint64 // commits acknowledged via the RFA fast path
	commitsFull atomic.Uint64 // commits that required the full durability horizon
}

// markerFileName holds the group-commit stable-GSN marker.
const markerFileName = "wal/marker"

// NewManager creates the distributed log and starts its background threads
// (per-partition WAL writers, the lift ticker, and — if configured — the
// commit subsystem: per-partition flushers plus the marker writer, or the
// centralized baseline committer).
func NewManager(cfg Config) *Manager {
	cfg.fillDefaults()
	m := &Manager{
		cfg:      cfg,
		stop:     make(chan struct{}),
		liftStop: make(chan struct{}),
		gcNotify: make(chan struct{}, 1),
	}
	m.sched = cfg.Sched
	if m.sched == nil {
		m.sched = iosched.New(iosched.Config{})
		m.ownSched = true
	}
	m.parts = make([]*Partition, cfg.Partitions)
	m.ownerMu = make([]sync.Mutex, cfg.Partitions)
	m.archIdx = make(map[string]*archEntry)
	m.archCover = make([]base.GSN, cfg.Partitions)
	m.gsnFloor.Store(uint64(cfg.GSNFloor))
	for i := range m.parts {
		p := &Partition{ID: i, mgr: m, scratch: make([]byte, 4096)}
		p.lastGSN.Store(uint64(cfg.GSNFloor))
		p.flushedGSN.Store(uint64(cfg.GSNFloor))
		p.initSegSeq()
		p.initChunks(cfg.ChunksPerPartition, cfg.ChunkSize)
		m.parts[i] = p
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			p.writerLoop(m.stop)
		}()
	}
	m.markerFile = cfg.SSD.Open(markerFileName)
	m.histRFA = metrics.NewHistogram()
	m.histRemote = metrics.NewHistogram()
	m.trace = cfg.Trace
	if cfg.Obs != nil {
		m.registerObs(cfg.Obs)
	}
	m.aggMin.Store(uint64(cfg.GSNFloor))
	m.epochMin, m.epochMax = epochMinDefault, epochMaxDefault
	if cfg.GroupCommitInterval > 0 {
		m.epochMin, m.epochMax = cfg.GroupCommitInterval, cfg.GroupCommitInterval
	}
	if cfg.GroupCommit {
		if cfg.CentralizedCommit {
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				m.groupCommitterLoop()
			}()
		} else {
			m.shards = make([]waiterShard, cfg.Partitions)
			m.flushKick = make([]chan struct{}, cfg.Partitions)
			for i := range m.flushKick {
				m.flushKick[i] = make(chan struct{}, 1)
			}
			m.markerKick = make(chan struct{}, 1)
			m.markerErrC = make(chan error, 1)
			for _, p := range m.parts {
				p := p
				m.wg.Add(1)
				go func() {
					defer m.wg.Done()
					m.flusherLoop(p)
				}()
			}
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				m.markerLoop()
			}()
		}
	}
	m.liftWG.Add(1)
	go func() {
		defer m.liftWG.Done()
		m.liftLoop()
	}()
	return m
}

// NumPartitions returns the number of per-worker logs.
func (m *Manager) NumPartitions() int { return len(m.parts) }

// Partition returns partition i (used by recovery and tests).
func (m *Manager) Partition(i int) *Partition { return m.parts[i] }

// AcquireOwnership pins partition worker to the calling session for the
// duration of a transaction.
func (m *Manager) AcquireOwnership(worker int) { m.ownerMu[worker].Lock() }

// ReleaseOwnership releases the pin taken by AcquireOwnership.
func (m *Manager) ReleaseOwnership(worker int) { m.ownerMu[worker].Unlock() }

// Append assigns a GSN and appends rec to partition worker. The caller must
// own the partition (hold AcquireOwnership). proposal is max(txnGSN,
// pageGSN) per the GSN protocol.
func (m *Manager) Append(worker int, rec *Record, proposal base.GSN) base.GSN {
	if m.cfg.StripUndoImages {
		rec.Before = nil
		for i := range rec.Diffs {
			rec.Diffs[i].Before = nil
		}
	}
	return m.parts[worker].Append(rec, proposal)
}

// CommitTxn appends the commit record for txn and blocks until it is
// durable under the configured protocol (§3.2). rfaSafe reports that the
// transaction's needsRemoteFlush flag is false: every record it depends on
// is either already durable or in its own log. It returns the commit GSN.
func (m *Manager) CommitTxn(worker int, txn base.TxnID, proposal base.GSN, rfaSafe bool) base.GSN {
	p := m.parts[worker]
	if rfaSafe {
		m.commitsRFA.Add(1)
	} else {
		m.commitsFull.Add(1)
	}

	if m.cfg.CommitFlushDisabled {
		rec := Record{Type: RecCommit, Txn: txn, Aux: 1}
		return p.Append(&rec, proposal)
	}

	if m.cfg.GroupCommit {
		rec := Record{Type: RecCommit, Txn: txn, Aux: boolAux(rfaSafe)}
		var t0 time.Time
		if m.histAppend != nil {
			t0 = time.Now()
		}
		gsn := p.Append(&rec, proposal)
		if m.histAppend != nil {
			m.histAppend.Observe(time.Since(t0))
		}
		m.WaitCommitDurable(worker, gsn, rfaSafe)
		return gsn
	}

	switch m.cfg.PersistMode {
	case PersistPMem:
		// Immediate commit: make remote dependencies durable *before*
		// appending the commit record, so that at recovery the presence of
		// a valid commit record implies all its dependencies are present
		// (every commit record is marked dependency-safe, Aux=1).
		if !rfaSafe {
			for _, q := range m.parts {
				if q != p {
					q.FlushPMem()
				}
			}
		}
		rec := Record{Type: RecCommit, Txn: txn, Aux: 1}
		var t0, t1 time.Time
		if m.histAppend != nil {
			t0 = time.Now()
		}
		gsn := p.Append(&rec, proposal)
		if m.histAppend != nil {
			t1 = time.Now()
			m.histAppend.Observe(t1.Sub(t0))
		}
		p.FlushPMem()
		if m.histFlush != nil {
			m.histQueue.Observe(0)
			m.histFlush.Observe(time.Since(t1))
			m.histAck.Observe(0)
		}
		// The commit is durable here: immediate-commit acks synchronously.
		m.trace.Record(worker, obs.EvCommitAck, uint64(gsn), ackClassSync)
		return gsn
	default: // PersistDRAM without group commit: synchronous stage+sync
		if !rfaSafe {
			for _, q := range m.parts {
				if q != p {
					q.stageAll(true)
				}
			}
		}
		rec := Record{Type: RecCommit, Txn: txn, Aux: 1}
		var t0, t1 time.Time
		if m.histAppend != nil {
			t0 = time.Now()
		}
		gsn := p.Append(&rec, proposal)
		if m.histAppend != nil {
			t1 = time.Now()
			m.histAppend.Observe(t1.Sub(t0))
		}
		p.stageAll(true)
		if m.histFlush != nil {
			m.histQueue.Observe(0)
			m.histFlush.Observe(time.Since(t1))
			m.histAck.Observe(0)
		}
		m.trace.Record(worker, obs.EvCommitAck, uint64(gsn), ackClassSync)
		return gsn
	}
}

// AppendCommitRecord appends just the commit record (caller owns the
// partition); combine with WaitCommitDurable for pipelined commit protocols
// (Aether's flush pipelining) that must not block while holding the log.
func (m *Manager) AppendCommitRecord(worker int, txn base.TxnID, proposal base.GSN, rfaSafe bool) base.GSN {
	rec := Record{Type: RecCommit, Txn: txn, Aux: boolAux(rfaSafe)}
	return m.parts[worker].Append(&rec, proposal)
}

// EnqueueCommitWaiter registers an asynchronous durability callback for the
// commit record at gsn (group-commit mode).
func (m *Manager) EnqueueCommitWaiter(worker int, gsn base.GSN, rfaSafe bool, onDurable func()) {
	m.enqueueWaiter(commitWaiter{
		gsn: gsn, part: worker, rfaSafe: rfaSafe, onDurable: onDurable, enq: time.Now(),
	})
}

// WaitCommitDurable blocks until the commit record at gsn is durable under
// the group-commit protocol. Requires GroupCommit mode. The wait channel is
// pooled and signalled by a send (never closed), keeping synchronous commits
// allocation-free.
func (m *Manager) WaitCommitDurable(worker int, gsn base.GSN, rfaSafe bool) {
	ch := ackChPool.Get().(chan struct{})
	m.enqueueWaiter(commitWaiter{
		gsn: gsn, part: worker, rfaSafe: rfaSafe, ch: ch, enq: time.Now(),
	})
	<-ch
	ackChPool.Put(ch)
}

// CommitTxnAsync appends the commit record and arranges for onDurable to be
// invoked once it is durable. In group-commit modes the call returns
// immediately (passive group commit: the worker proceeds); otherwise the
// synchronous protocol runs and onDurable fires before returning.
func (m *Manager) CommitTxnAsync(worker int, txn base.TxnID, proposal base.GSN, rfaSafe bool, onDurable func()) base.GSN {
	if m.cfg.GroupCommit && !m.cfg.CommitFlushDisabled {
		if rfaSafe {
			m.commitsRFA.Add(1)
		} else {
			m.commitsFull.Add(1)
		}
		rec := Record{Type: RecCommit, Txn: txn, Aux: boolAux(rfaSafe)}
		var t0 time.Time
		if m.histAppend != nil {
			t0 = time.Now()
		}
		gsn := m.parts[worker].Append(&rec, proposal)
		if m.histAppend != nil {
			m.histAppend.Observe(time.Since(t0))
		}
		m.EnqueueCommitWaiter(worker, gsn, rfaSafe, onDurable)
		return gsn
	}
	gsn := m.CommitTxn(worker, txn, proposal, rfaSafe)
	onDurable()
	return gsn
}

func boolAux(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// AbortEnd appends the end-of-transaction record after a logical rollback.
// Per §3.6, the log flush is omitted for aborts.
func (m *Manager) AbortEnd(worker int, txn base.TxnID, proposal base.GSN) base.GSN {
	rec := Record{Type: RecAbortEnd, Txn: txn}
	return m.parts[worker].Append(&rec, proposal)
}

// Prepare appends the two-phase-commit prepare record for txn (Aux = gid,
// the cluster-wide global transaction ID) and blocks until it is durable in
// every partition's prefix. The all-partition wait is what lets a durable
// prepare vouch for the transaction's dependencies: every record the
// transaction touched or depends on carries a smaller GSN, so the stable
// horizon reaching the prepare GSN covers them all — exactly the remote-class
// commit durability rule, reused for phase one.
func (m *Manager) Prepare(worker int, txn base.TxnID, gid uint64, proposal base.GSN) base.GSN {
	rec := Record{Type: RecPrepare, Txn: txn, Aux: gid}
	gsn := m.parts[worker].Append(&rec, proposal)
	switch {
	case m.cfg.CommitFlushDisabled:
		// Ablation mode: commits don't wait either; keep the shapes aligned.
	case m.cfg.GroupCommit:
		m.WaitCommitDurable(worker, gsn, false)
	default:
		m.FlushAllLogs()
	}
	return gsn
}

// Decide appends the coordinator's commit-decision record for global
// transaction gid and blocks until it is durable in its own partition — the
// cross-shard transaction's durability point. Participants' prepares are
// already durable (the coordinator decides only after every prepare
// acknowledged), so only the decide's own partition needs waiting on.
func (m *Manager) Decide(worker int, txn base.TxnID, gid uint64, proposal base.GSN) base.GSN {
	p := m.parts[worker]
	rec := Record{Type: RecDecide, Txn: txn, Aux: gid}
	gsn := p.Append(&rec, proposal)
	switch {
	case m.cfg.CommitFlushDisabled:
	case m.cfg.GroupCommit:
		m.WaitCommitDurable(worker, gsn, true)
	case m.cfg.PersistMode == PersistPMem:
		p.FlushPMem()
	default:
		p.stageAll(true)
	}
	return gsn
}

// CommitDecided appends the phase-two commit record of a prepared
// transaction. The record is marked dependency-safe (Aux=1): the prepare
// already made the transaction's records and dependencies durable, so
// recovery may trust this commit wherever it finds it. In group-commit mode
// durability rides the partition's normal flush cadence and onDurable fires
// asynchronously; synchronous modes flush the own partition and fire it
// before returning.
func (m *Manager) CommitDecided(worker int, txn base.TxnID, proposal base.GSN, onDurable func()) base.GSN {
	p := m.parts[worker]
	rec := Record{Type: RecCommit, Txn: txn, Aux: 1}
	gsn := p.Append(&rec, proposal)
	switch {
	case m.cfg.CommitFlushDisabled:
		onDurable()
	case m.cfg.GroupCommit:
		m.EnqueueCommitWaiter(worker, gsn, true, onDurable)
	case m.cfg.PersistMode == PersistPMem:
		p.FlushPMem()
		onDurable()
	default:
		p.stageAll(true)
		onDurable()
	}
	return gsn
}

// FlushAllLogs makes every record appended so far (in every partition)
// durable: the write-ahead rule enforced before page images reach the
// database file (a page may carry uncommitted changes under steal, and its
// undo information must never be lost). In PMem mode this is one cheap
// persist barrier per partition.
func (m *Manager) FlushAllLogs() {
	for _, p := range m.parts {
		if m.cfg.PersistMode == PersistPMem {
			p.FlushPMem()
		} else {
			p.stageAll(true)
		}
	}
}

// MinFlushedGSN returns the GSN up to which *all* logs are durable — the
// GSNflushed that RFA samples at transaction begin (§3.2).
func (m *Manager) MinFlushedGSN() base.GSN {
	min := base.GSN(^uint64(0))
	for _, p := range m.parts {
		if g := base.GSN(p.flushedGSN.Load()); g < min {
			min = g
		}
	}
	return min
}

// MinCurrentGSN returns the smallest current GSN among all logs; records
// created afterwards are guaranteed to have higher GSNs (used by the
// checkpointer, §3.4).
func (m *Manager) MinCurrentGSN() base.GSN {
	min := base.GSN(^uint64(0))
	for _, p := range m.parts {
		if g := base.GSN(p.lastGSN.Load()); g < min {
			min = g
		}
	}
	return min
}

// MaxGSN returns the largest GSN assigned so far across all logs.
func (m *Manager) MaxGSN() base.GSN {
	max := base.GSN(0)
	for _, p := range m.parts {
		if g := base.GSN(p.lastGSN.Load()); g > max {
			max = g
		}
	}
	return max
}

// StableGSN returns the group committer's persisted durable horizon.
func (m *Manager) StableGSN() base.GSN { return base.GSN(m.stableGSN.Load()) }

// Prune truncates the log: every record with GSN < upTo is no longer needed
// for recovery (its page is checkpointed and no active transaction may need
// it for undo). Closed stage-2 segments below the horizon are archived and
// deleted (§3.4).
func (m *Manager) Prune(upTo base.GSN) {
	for _, p := range m.parts {
		p.prune(upTo)
	}
}

// LiveWALBytes returns the total un-pruned stage-2 log volume — the "WAL
// volume" series of Figure 9.
func (m *Manager) LiveWALBytes() uint64 {
	var n uint64
	for _, p := range m.parts {
		n += p.liveBytes.Load()
	}
	return n
}

// Stats is the WAL's one cohesive statistics surface: volume and commit-path
// counters plus the nested commit-latency histogram handles (live histograms;
// snapshot via their own methods). The histogram fields may hold nil
// histograms when the manager was built without an observability registry —
// CommitWait is always populated, CommitStages only with Config.Obs.
type Stats struct {
	AppendedBytes   uint64
	AppendedRecords uint64
	StagedBytes     uint64
	PrunedBytes     uint64
	ArchivedBytes   uint64
	SealStalls      uint64
	CommitsRFA      uint64
	CommitsFull     uint64
	ScratchRegrows  uint64

	// CommitWait holds the end-to-end commit acknowledgement latency
	// distributions, split by RFA-fast versus remote-flush path.
	CommitWait CommitWaitStats
	// CommitStages breaks the commit wait into pipeline stages
	// (append/queue/flush/ack); populated only with Config.Obs.
	CommitStages CommitStageStats
}

// Stats returns aggregated log statistics.
func (m *Manager) Stats() Stats {
	var s Stats
	for _, p := range m.parts {
		s.AppendedBytes += p.appendedBytes.Load()
		s.AppendedRecords += p.appendedRecords.Load()
		s.StagedBytes += p.stagedBytes.Load()
		s.PrunedBytes += p.prunedBytes.Load()
		s.SealStalls += p.sealStalls.Load()
		s.ScratchRegrows += p.scratchRegrows.Load()
	}
	s.ArchivedBytes = m.archived.Load()
	s.CommitsRFA = m.commitsRFA.Load()
	s.CommitsFull = m.commitsFull.Load()
	s.CommitWait = CommitWaitStats{RFA: m.histRFA, Remote: m.histRemote}
	s.CommitStages = CommitStageStats{
		Append: m.histAppend,
		Queue:  m.histQueue,
		Flush:  m.histFlush,
		Ack:    m.histAck,
	}
	return s
}

func (m *Manager) onStaged(bytes int) {
	if m.cfg.OnStaged != nil {
		m.cfg.OnStaged(bytes)
	}
}

func (m *Manager) archiveSegment(seg *segmentInfo) {
	m.archived.Add(uint64(seg.size))
	if !m.cfg.Archive {
		return
	}
	m.archiveMu.Lock()
	defer m.archiveMu.Unlock()
	// Pooled whole-segment buffer: archiving runs on every prune, and a
	// fresh per-segment allocation here was measurable GC pressure.
	if cap(m.archiveBuf) < int(seg.size) {
		m.archiveBuf = make([]byte, seg.size)
	}
	buf := m.archiveBuf[:seg.size]
	dst := m.cfg.SSD.Open("archive/" + seg.name)
	n, err := m.sched.ReadWait(iosched.ClassBackup, seg.file, buf, 0, walRetries)
	if err == nil {
		err = m.sched.WriteWait(iosched.ClassBackup, dst, buf[:n], 0, walRetries)
	}
	if err == nil {
		err = m.sched.SyncWait(iosched.ClassBackup, dst, walRetries)
	}
	if err != nil {
		// The caller deletes the live segment right after this returns;
		// losing the archive copy would silently break media recovery.
		panic(fmt.Sprintf("wal: archiving segment %s failed: %v", seg.name, err))
	}
	// Ship the sealed segment to the cold tier while the pooled buffer is
	// in hand (archive.go); failure is retried by SyncArchive, never fatal.
	m.recordArchivedLocked("archive/"+seg.name, buf[:n], seg.maxGSN)
}

// groupCommitterLoop is the CENTRALIZED baseline committer (retained behind
// Config.CentralizedCommit for the commit ablation; the default path is the
// decentralized subsystem in commit.go). Each tick it makes all logs durable
// serially, persists the verified stable GSN to the marker file
// synchronously, and acknowledges waiting transactions — RFA-safe ones as
// soon as their own log is durable, others once the global horizon passes
// their commit GSN.
func (m *Manager) groupCommitterLoop() {
	// Interval-driven (the epoch): ticking on every enqueue would
	// degenerate into one log flush per commit, which is exactly what
	// group commit exists to avoid. The notify channel only short-cuts the
	// wait when most of the interval already elapsed.
	timer := time.NewTimer(m.cfg.GroupCommitInterval)
	defer timer.Stop()
	last := time.Now()
	for {
		select {
		case <-m.stop:
			return
		case <-m.gcNotify:
			if time.Since(last) < m.cfg.GroupCommitInterval/2 {
				continue
			}
		case <-timer.C:
		}
		timer.Reset(m.cfg.GroupCommitInterval)
		last = time.Now()
		m.groupCommitTick()
	}
}

func (m *Manager) groupCommitTick() {
	// 1. Make every log durable up to its current content.
	flushStart := time.Now()
	for _, p := range m.parts {
		if m.cfg.PersistMode == PersistPMem {
			p.FlushPMem()
		} else {
			p.stageAll(true)
		}
	}
	flushEnd := time.Now()
	// 2. Compute and persist the stable horizon. flushedGSN is per-partition
	// sound ("no record of mine with GSN ≤ this is lost"), so the min is a
	// global horizon; the lift ticker keeps idle partitions from pinning it.
	s := m.MinFlushedGSN()
	if s > base.GSN(m.stableGSN.Load()) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(s))
		err := m.sched.WriteWait(iosched.ClassWAL, m.markerFile, buf[:], 0, walRetries)
		if err == nil {
			err = m.sched.SyncWait(iosched.ClassWAL, m.markerFile, walRetries)
		}
		if err != nil {
			// The marker may legitimately lag (commits then wait on the
			// full horizon); never advance stableGSN past a failed write.
			return
		}
		m.stableGSN.Store(uint64(s))
	}
	// 3. Acknowledge waiters: collect under the lock, release, then notify.
	// The callbacks run application code (commit continuations) and must
	// never execute while gcMu is held — a callback that re-enters the
	// manager (or simply runs long) would stall every concurrent enqueue.
	m.gcMu.Lock()
	ready := m.gcScratch[:0]
	pending := m.gcQueue[:0]
	for _, w := range m.gcQueue {
		durable := false
		if w.rfaSafe {
			durable = base.GSN(m.parts[w.part].flushedGSN.Load()) >= w.gsn
		} else {
			durable = base.GSN(m.stableGSN.Load()) >= w.gsn
		}
		if durable {
			ready = append(ready, w)
		} else {
			pending = append(pending, w)
		}
	}
	for i := len(pending); i < len(m.gcQueue); i++ {
		m.gcQueue[i] = commitWaiter{}
	}
	m.gcQueue = pending
	m.gcMu.Unlock()
	for i := range ready {
		h := m.histRemote
		if ready[i].rfaSafe {
			h = m.histRFA
		}
		m.observeStages(&ready[i], flushStart, flushEnd)
		m.traceAck(&ready[i])
		m.ack(&ready[i], h)
		ready[i] = commitWaiter{}
	}
	m.gcScratch = ready[:0]
}

// liftLoop periodically takes ownership of idle partitions, flushes them,
// and lifts their GSN watermarks to the global maximum. Without this, an
// idle log would pin MinFlushedGSN/MinCurrentGSN forever, stalling group
// commit, degrading RFA, and preventing log truncation. Lifting is safe
// because it happens under partition ownership with no pending bytes: the
// partition has no records in the lifted gap, and its future records are
// assigned GSNs above the lifted watermark.
func (m *Manager) liftLoop() {
	const interval = 500 * time.Microsecond
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		select {
		case <-m.liftStop:
			return
		case <-timer.C:
		}
		timer.Reset(interval)
		m.liftIdlePartitions()
	}
}

func (m *Manager) liftIdlePartitions() {
	target := m.MaxGSN()
	if target == 0 {
		return
	}
	for i, p := range m.parts {
		if base.GSN(p.lastGSN.Load()) >= target && base.GSN(p.flushedGSN.Load()) >= target {
			continue
		}
		if !m.ownerMu[i].TryLock() {
			continue // a session owns it; its own activity keeps it fresh
		}
		// We are the owner now: drain pending bytes, then lift. As owner we
		// know no new records can appear while we hold the lock, so after a
		// successful drain every record of this partition is durable and
		// the gap up to target is record-free: lifting both watermarks to
		// target is sound.
		durable := false
		if m.cfg.PersistMode == PersistPMem {
			p.FlushPMem()
			ch := p.cur.Load()
			durable = len(p.fullC) == 0 && ch.Region.Flushed() >= ch.Region.Written()
		} else {
			p.stageAll(true)
			durable = p.fullyStaged()
		}
		if durable {
			if base.GSN(p.lastGSN.Load()) < target {
				// Append a durable RecLift witness at exactly `target`
				// (Append assigns max(proposal, last, floor)+1) instead of
				// bare watermark stores: every advance of flushedGSN must be
				// backed by a durable record with that GSN, so the
				// log-derived stable horizon recovery computes (min over
				// partitions of max recovered GSN, see ReadLog) covers every
				// GSN the commit subsystem may have acknowledged against.
				var rec Record
				rec.Type = RecLift
				p.Append(&rec, target-1)
				if m.cfg.PersistMode == PersistPMem {
					p.FlushPMem()
				} else {
					p.stageAll(true)
				}
			} else {
				// lastGSN already reaches target and the drain above made
				// every record durable; the watermark advance is record-
				// backed by the partition's own tail record.
				p.advanceFlushedGSN(target)
			}
		}
		m.ownerMu[i].Unlock()
	}
}

// Close stops background threads. If drain is true, all pending log data is
// staged and synced first (clean shutdown); with drain false the log is
// abandoned as-is (used before simulated crashes).
func (m *Manager) Close(drain bool) {
	if !m.closed.CompareAndSwap(false, true) {
		return // idempotent
	}
	// Quiesce order matters (satellite: drain must not race a final lift).
	// 1. Stop the lift loop FIRST and wait for it: liftIdlePartitions
	//    appends RecLift records under ownerMu, and a drain snapshotting
	//    partitions while a lift loop is still live could stage a prefix
	//    and then have a late lift extend the log behind it.
	close(m.liftStop)
	m.liftWG.Wait()
	// 2. Drain every partition's stage-1 log into synced stage-2 segments.
	if drain {
		for i, p := range m.parts {
			m.ownerMu[i].Lock()
			p.stageAll(true)
			m.ownerMu[i].Unlock()
		}
	}
	// 3. Stop flushers, writer loops, and the marker writer.
	close(m.stop)
	m.wg.Wait()
	if m.cfg.GroupCommit {
		if drain {
			// Clean shutdown: one final flush round makes every queued
			// record durable and persists the stable-horizon marker.
			m.finalCommitFlush()
		}
		// Complete parked waiters so no callback is lost. On the crash
		// path nothing was flushed here — unacknowledged commits may
		// legitimately be lost, exactly like a real crash.
		m.completeAllWaiters()
	}
	if m.ownSched {
		if drain {
			m.sched.Close()
		} else {
			m.sched.Abort()
		}
	}
}

// Sched exposes the I/O scheduler the log submits to (silor and tests).
func (m *Manager) Sched() *iosched.Scheduler { return m.sched }

// SSD exposes the flash device (baselines store checkpoint files on it).
func (m *Manager) SSD() *dev.SSD { return m.cfg.SSD }

// FullValueImages reports whether the backend needs full after-images for
// updates instead of diffs. The physiological log prefers diffs (§3.8);
// with compression disabled (the §3.8 comparison baseline) full images are
// requested so the experiment measures both halves of the scheme.
func (m *Manager) FullValueImages() bool { return !m.cfg.Compression }

// SetOnStaged installs the staged-bytes hook after construction (the engine
// builds the checkpointer after the log).
func (m *Manager) SetOnStaged(fn func(int)) { m.cfg.OnStaged = fn }

// StageAllToSSD forces every pending stage-1 byte into synced stage-2
// segments (used before archiving the live WAL at the end of recovery, so
// the archive covers recovery-generated records such as loser AbortEnds).
func (m *Manager) StageAllToSSD() {
	for i, p := range m.parts {
		m.ownerMu[i].Lock()
		p.stageAll(true)
		m.ownerMu[i].Unlock()
	}
}
