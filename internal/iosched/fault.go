// Fault injection: the scheduler is the single choke point for all SSD
// traffic, so per-class fault profiles let robustness tests exercise the
// engine's invariants (DESIGN.md §4) under failed writes, slow devices, and
// out-of-order completion delivery without touching the subsystems
// themselves.
package iosched

import (
	"time"

	"repro/internal/dev"
	"repro/internal/sys"
)

// Fault is a per-class injection profile.
type Fault struct {
	// ErrRate is the probability in [0,1] that an attempt fails with
	// ErrInjected instead of touching the device. Retries re-roll.
	ErrRate float64
	// ExtraLatency is added to every attempt.
	ExtraLatency time.Duration
	// ReorderWindow > 1 withholds completed write completions per file
	// and delivers up to that many in shuffled order. Reordering never
	// crosses a sync barrier: all withheld completions for a file are
	// delivered (shuffled) strictly before a sync on it executes.
	ReorderWindow int
	// Seed reseeds the scheduler's fault RNG when non-zero, making a
	// profile deterministic.
	Seed uint64
}

// SetFault installs a fault profile for one class. A zero Fault clears it.
func (s *Scheduler) SetFault(c Class, f Fault) {
	s.mu.Lock()
	s.faults[c] = f
	if f.Seed != 0 {
		s.rng = sys.NewRand(f.Seed)
	}
	s.mu.Unlock()
}

// ClearFaults removes every fault profile. Completions already withheld
// for reordering are delivered by the next barrier/idle trigger as usual.
func (s *Scheduler) ClearFaults() {
	s.mu.Lock()
	s.faults = [NumClasses]Fault{}
	s.mu.Unlock()
}

// faultDecision rolls one attempt's injected error and added latency.
func (s *Scheduler) faultDecision(c Class) (inject bool, extra time.Duration) {
	s.mu.Lock()
	f := s.faults[c]
	if f.ErrRate > 0 && s.rng.Float64() < f.ErrRate {
		inject = true
	}
	s.mu.Unlock()
	return inject, f.ExtraLatency
}

// parkReorderedLocked withholds a completed write's completion and decides
// whether the file's withheld set should be released now. Release triggers:
//
//	(a) the file has no queued or in-flight writes left — nothing more to
//	    shuffle with, and callers that wait their write handles before
//	    submitting a sync would otherwise deadlock;
//	(c) the withheld set reached the configured window.
//
// Trigger (b) — a sync on the file is about to execute — lives in execute,
// and (d) — Close/Abort — in Abort (Close drains via (a)).
func (s *Scheduler) parkReorderedLocked(fs *fileState, r *Request) []*Request {
	fs.reorderParked = append(fs.reorderParked, r)
	window := s.faults[r.Class].ReorderWindow
	if (fs.queuedWrites == 0 && fs.inflightWrites == 0) || len(fs.reorderParked) >= window {
		return s.takeShuffledLocked(fs)
	}
	return nil
}

// releaseReordered delivers all withheld completions for f in shuffled
// order. Called before a sync on f executes, so reordering stays within
// the barrier window.
func (s *Scheduler) releaseReordered(f *dev.File) {
	s.mu.Lock()
	fs := s.files[f]
	if fs == nil || len(fs.reorderParked) == 0 {
		s.mu.Unlock()
		return
	}
	release := s.takeShuffledLocked(fs)
	s.mu.Unlock()
	for _, r := range release {
		s.deliver(r)
	}
}

func (s *Scheduler) takeShuffledLocked(fs *fileState) []*Request {
	parked := fs.reorderParked
	fs.reorderParked = nil
	// Fisher-Yates with the scheduler RNG (deterministic under Seed).
	for i := len(parked) - 1; i > 0; i-- {
		j := s.rng.Intn(i + 1)
		parked[i], parked[j] = parked[j], parked[i]
	}
	return parked
}
