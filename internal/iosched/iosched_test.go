package iosched

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/dev"
)

// completionLog records delivery order from OnComplete callbacks.
type completionLog struct {
	mu    sync.Mutex
	order []*Request
}

func (l *completionLog) cb(r *Request) {
	l.mu.Lock()
	l.order = append(l.order, r)
	l.mu.Unlock()
}

func (l *completionLog) snapshot() []*Request {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Request(nil), l.order...)
}

func TestSyncBarrierMakesWritesDurable(t *testing.T) {
	ssd := dev.NewSSD()
	s := New(Config{QueueDepth: 4})
	defer s.Close()
	f := ssd.Open("data")

	var reqs []*Request
	for i := 0; i < 8; i++ {
		buf := bytes.Repeat([]byte{byte('a' + i)}, 512)
		reqs = append(reqs, s.Write(ClassWriteback, f, buf, int64(i)*512, 0))
	}
	// The sync is submitted while writes may still be queued: the barrier
	// must hold regardless.
	if err := s.SyncWait(ClassWriteback, f, 0); err != nil {
		t.Fatalf("sync: %v", err)
	}
	for i, r := range reqs {
		if err := r.Wait(); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	ssd.Crash()
	got := make([]byte, 512)
	for i := 0; i < 8; i++ {
		f.ReadAt(got, int64(i)*512)
		if got[0] != byte('a'+i) || got[511] != byte('a'+i) {
			t.Fatalf("write %d not durable after synced crash", i)
		}
	}
}

func TestSyncDoesNotCoverLaterWrites(t *testing.T) {
	ssd := dev.NewSSD()
	s := New(Config{QueueDepth: 1, BatchSize: 1})
	defer s.Close()
	f := ssd.Open("data")

	s.Write(ClassWAL, f, []byte("early"), 0, 0)
	sync := s.Sync(ClassWAL, f, 0)
	if err := sync.Wait(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	// A write submitted after the sync is cached, not durable.
	if err := s.WriteWait(ClassWAL, f, []byte("later"), 16, 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	ssd.Crash()
	buf := make([]byte, 5)
	if f.ReadAt(buf, 0); string(buf) != "early" {
		t.Fatalf("synced write lost: %q", buf)
	}
	if n := f.ReadAt(buf, 16); n != 0 && buf[0] != 0 {
		t.Fatalf("unsynced later write survived the crash")
	}
}

func TestPriorityOrdering(t *testing.T) {
	ssd := dev.NewSSD()
	s := New(Config{QueueDepth: 1, BatchSize: 1})
	defer s.Close()
	f := ssd.Open("data")

	// Plug the single worker with a slow backup request, then queue one
	// request per class while it sleeps; the worker must then drain them
	// in priority order, not submission order.
	s.SetFault(ClassBackup, Fault{ExtraLatency: 30 * time.Millisecond})
	var log completionLog
	plug := &Request{Op: OpWrite, Class: ClassBackup, File: f, Buf: []byte("plug"), OnComplete: log.cb}
	s.Submit(plug)
	time.Sleep(5 * time.Millisecond) // let the worker pick up the plug

	submitOrder := []Class{ClassBackup, ClassCheckpoint, ClassWriteback, ClassPageRead, ClassWAL}
	var reqs []*Request
	for _, c := range submitOrder {
		r := &Request{Op: OpWrite, Class: c, File: f, Buf: []byte{byte(c)}, Off: 64, OnComplete: log.cb}
		reqs = append(reqs, r)
		s.Submit(r)
	}
	for _, r := range reqs {
		if err := r.Wait(); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	order := log.snapshot()
	if order[0] != plug {
		t.Fatalf("plug did not complete first")
	}
	want := []Class{ClassWAL, ClassPageRead, ClassWriteback, ClassCheckpoint, ClassBackup}
	for i, c := range want {
		if got := order[i+1].Class; got != c {
			t.Fatalf("completion %d: got class %v, want %v (full order %v)", i, got, c, order[1:])
		}
	}
}

func TestErrorInjectionWithoutRetries(t *testing.T) {
	ssd := dev.NewSSD()
	s := New(Config{QueueDepth: 2})
	defer s.Close()
	f := ssd.Open("data")

	s.SetFault(ClassCheckpoint, Fault{ErrRate: 1.0, Seed: 42})
	err := s.WriteWait(ClassCheckpoint, f, []byte("doomed"), 0, 0)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if ssd.BytesWritten() != 0 {
		t.Fatalf("injected failure still touched the device")
	}
	st := s.Stats().Classes[ClassCheckpoint]
	if st.Errors != 1 || st.Injected != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// Other classes are unaffected.
	if err := s.WriteWait(ClassWAL, f, []byte("fine"), 0, 0); err != nil {
		t.Fatalf("unfaulted class failed: %v", err)
	}
}

func TestErrorInjectionRetriesRecover(t *testing.T) {
	ssd := dev.NewSSD()
	s := New(Config{QueueDepth: 2})
	defer s.Close()
	f := ssd.Open("data")

	s.SetFault(ClassWAL, Fault{ErrRate: 0.5, Seed: 7})
	for i := 0; i < 32; i++ {
		if err := s.WriteWait(ClassWAL, f, []byte("persistent"), int64(i)*16, 64); err != nil {
			t.Fatalf("write %d failed despite retries: %v", i, err)
		}
	}
	st := s.Stats().Classes[ClassWAL]
	if st.Retries == 0 {
		t.Fatalf("expected some retries at 50%% error rate, got none: %+v", st)
	}
	if st.Errors != 0 {
		t.Fatalf("final errors despite retry budget: %+v", st)
	}
}

func TestReorderStaysWithinBarrier(t *testing.T) {
	ssd := dev.NewSSD()
	s := New(Config{QueueDepth: 4})
	defer s.Close()
	f := ssd.Open("data")

	s.SetFault(ClassWriteback, Fault{ReorderWindow: 4, Seed: 99})
	var log completionLog
	const n = 16
	var reqs []*Request
	for i := 0; i < n; i++ {
		r := &Request{Op: OpWrite, Class: ClassWriteback, File: f,
			Buf: []byte{byte(i)}, Off: int64(i), OnComplete: log.cb}
		reqs = append(reqs, r)
		s.Submit(r)
	}
	sync := &Request{Op: OpSync, Class: ClassWriteback, File: f, OnComplete: log.cb}
	s.Submit(sync)
	if err := sync.Wait(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	for _, r := range reqs {
		if err := r.Wait(); err != nil {
			t.Fatalf("write: %v", err)
		}
	}

	order := log.snapshot()
	seen := make(map[*Request]int)
	for i, r := range order {
		seen[r] = i
	}
	if len(seen) != n+1 {
		t.Fatalf("completions delivered %d times, want %d distinct", len(order), n+1)
	}
	// Every write completion must land strictly before the barrier's.
	for i, r := range reqs {
		if seen[r] > seen[sync] {
			t.Fatalf("write %d completed after its covering sync barrier", i)
		}
	}
	ssd.Crash()
	buf := make([]byte, 1)
	for i := 0; i < n; i++ {
		if f.ReadAt(buf, int64(i)); buf[0] != byte(i) {
			t.Fatalf("write %d not durable despite completed barrier", i)
		}
	}
}

func TestAbortFailsQueuedRequests(t *testing.T) {
	ssd := dev.NewSSD()
	s := New(Config{QueueDepth: 1, BatchSize: 1})
	f := ssd.Open("data")

	s.SetFault(ClassBackup, Fault{ExtraLatency: 30 * time.Millisecond})
	plug := s.Write(ClassBackup, f, []byte("plug"), 0, 0)
	time.Sleep(5 * time.Millisecond)
	queued := []*Request{
		s.Write(ClassWriteback, f, []byte("q1"), 64, 0),
		s.Sync(ClassWriteback, f, 0),
		s.Read(ClassPageRead, f, make([]byte, 4), 0, 0),
	}
	s.Abort()
	for i, r := range queued {
		if err := r.Wait(); !errors.Is(err, ErrAborted) {
			t.Fatalf("queued request %d: got %v, want ErrAborted", i, err)
		}
	}
	if err := plug.Wait(); err != nil {
		t.Fatalf("in-flight request should finish its device call: %v", err)
	}
	// Post-abort submissions fail immediately.
	if err := s.WriteWait(ClassWAL, f, []byte("x"), 0, 0); !errors.Is(err, ErrAborted) {
		t.Fatalf("post-abort submit: got %v", err)
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	ssd := dev.NewSSD()
	s := New(Config{QueueDepth: 2})
	f := ssd.Open("data")

	var reqs []*Request
	for i := 0; i < 32; i++ {
		reqs = append(reqs, s.Write(ClassCheckpoint, f, []byte{1}, int64(i), 0))
	}
	reqs = append(reqs, s.Sync(ClassCheckpoint, f, 0))
	s.Close()
	for i, r := range reqs {
		if err := r.Wait(); err != nil {
			t.Fatalf("request %d not drained cleanly: %v", i, err)
		}
	}
	if err := s.WriteWait(ClassWAL, f, []byte("x"), 0, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit: got %v", err)
	}
}

// TestQueueDepthOverlapsDeviceTime is the tentpole's raison d'être: with a
// per-op device latency, queue depth 8 must finish a batch far faster than
// queue depth 1 because simulated device time overlaps across workers.
func TestQueueDepthOverlapsDeviceTime(t *testing.T) {
	run := func(depth int) time.Duration {
		ssd := dev.NewSSD()
		ssd.SetPerf(2*time.Millisecond, 0)
		s := New(Config{QueueDepth: depth})
		defer s.Close()
		f := ssd.Open("data")
		start := time.Now()
		var reqs []*Request
		for i := 0; i < 32; i++ {
			reqs = append(reqs, s.Write(ClassWriteback, f, []byte{1}, int64(i), 0))
		}
		for _, r := range reqs {
			if err := r.Wait(); err != nil {
				t.Fatalf("write: %v", err)
			}
		}
		return time.Since(start)
	}
	serial := run(1)  // ≈ 32 × 2ms
	overlap := run(8) // ≈ 32/8 × 2ms
	if overlap*2 >= serial {
		t.Fatalf("queue depth 8 did not overlap: serial=%v overlap=%v", serial, overlap)
	}
}

func TestSchedulerStatsCountTraffic(t *testing.T) {
	ssd := dev.NewSSD()
	s := New(Config{})
	defer s.Close()
	f := ssd.Open("data")

	payload := bytes.Repeat([]byte{7}, 1024)
	if err := s.WriteWait(ClassWAL, f, payload, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncWait(ClassWAL, f, 0); err != nil {
		t.Fatal(err)
	}
	if n, err := s.ReadWait(ClassPageRead, f, make([]byte, 1024), 0, 0); err != nil || n != 1024 {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	st := s.Stats()
	wal, rd := st.Classes[ClassWAL], st.Classes[ClassPageRead]
	if wal.BytesWritten != 1024 || wal.Syncs != 1 || wal.Submitted != 2 || wal.Completed != 2 {
		t.Fatalf("wal stats: %+v", wal)
	}
	if rd.BytesRead != 1024 || rd.Completed != 1 {
		t.Fatalf("read stats: %+v", rd)
	}
	if st.Bytes() != 2048 {
		t.Fatalf("total bytes: %d", st.Bytes())
	}
}
