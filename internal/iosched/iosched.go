// Package iosched is a libaio-style asynchronous I/O scheduler over the
// simulated SSD (§3.8). The paper's engine never issues blocking
// one-page-at-a-time I/O: WAL stage-2 writes, writeback batches, and
// checkpoint increments all go through O_DIRECT + libaio submission and
// completion queues. This package is the reproduction's substitute for that
// seam: every subsystem submits typed requests (read / write / sync
// barrier) into per-class FIFO queues, a fixed pool of workers drains them
// in priority order (WAL flush > page-fault read > writeback > checkpoint >
// backup/archive), and completion is delivered through an awaitable handle
// or a callback. Because the device model sleeps to simulate latency,
// running several requests on distinct workers is exactly how real
// queue-depth parallelism overlaps device time with useful work.
//
// Durability semantics mirror libaio over a volatile write cache: a write
// completion means the device accepted the data (it may still be lost by a
// crash); only a sync-barrier completion makes previously completed writes
// on that file durable. A sync request submitted to a file is eligible to
// run only after every write submitted to that file *before the sync* has
// completed, so "submit batch, then sync, then wait the sync" is the
// idiomatic durable-batch pattern and callers never need to wait individual
// writes for ordering (only for error checking).
//
// The scheduler is also the single fault-injection point for robustness
// tests: per-class error rates, added latency, and completion reordering
// within a barrier window (see fault.go).
package iosched

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/dev"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sys"
)

// Class identifies the submitter of a request; it selects the priority
// queue, the fault-injection profile, and the stats bucket.
type Class int32

const (
	ClassWAL        Class = iota // stage-2 log flush + commit marker: latency critical
	ClassPageRead                // demand page faults: a worker is stalled on it
	ClassWriteback               // provider dirty-page writeback
	ClassCheckpoint              // checkpoint increments, master record, silor
	ClassBackup                  // backup, restore, segment archiving
	ClassRepl                    // replication: catch-up segment reads, replica WAL writes
	NumClasses
)

func (c Class) String() string {
	switch c {
	case ClassWAL:
		return "wal"
	case ClassPageRead:
		return "read"
	case ClassWriteback:
		return "writeback"
	case ClassCheckpoint:
		return "checkpoint"
	case ClassBackup:
		return "backup"
	case ClassRepl:
		return "repl"
	}
	return fmt.Sprintf("class%d", int32(c))
}

// Op is the request type.
type Op int32

const (
	OpRead Op = iota
	OpWrite
	OpSync // durability barrier over all writes submitted to File before it
)

var (
	// ErrInjected is returned by requests failed through SetFault.
	ErrInjected = errors.New("iosched: injected I/O error")
	// ErrAborted is returned for requests dropped by Abort (crash model).
	ErrAborted = errors.New("iosched: aborted")
	// ErrClosed is returned for requests submitted after Close began.
	ErrClosed = errors.New("iosched: scheduler closed")
)

// Request is one I/O operation. Callers either construct one and Submit it
// or use the Read/Write/Sync helpers. After completion (Wait returns, or
// OnComplete fires) N holds the byte count for reads and Err the final
// error after retries. A request must not be reused.
type Request struct {
	Op      Op
	Class   Class
	File    *dev.File
	Buf     []byte // aliased until completion: caller must not mutate in flight
	Off     int64
	Retries int // extra attempts after an injected failure
	// OnComplete, if set, runs on the worker goroutine that finished the
	// request, before Wait is released. It must not block and must not
	// call back into the scheduler.
	OnComplete func(*Request)

	N   int
	Err error

	done    chan struct{}
	barrier uint64 // OpSync: required completed-write count on File
}

// Wait blocks until the request completes and returns its final error.
func (r *Request) Wait() error {
	<-r.done
	return r.Err
}

// Config sizes the scheduler.
type Config struct {
	// QueueDepth is the number of concurrently executing requests
	// (worker goroutines), the analogue of the libaio queue depth.
	// Default 8.
	QueueDepth int
	// BatchSize caps how many requests one worker dequeues per lock
	// hold. Larger batches amortize dequeue overhead but let a worker
	// run stale low-priority picks after a high-priority arrival.
	// Default 4.
	BatchSize int
	// Priorities is the dispatch order over classes. Default:
	// WAL, page read, writeback, checkpoint, backup.
	Priorities []Class

	// Trace, when set, receives EvIODispatch/EvIOComplete lifecycle events
	// for every request, on ring TraceRingBase+class. Fixed at construction
	// so workers read it without synchronization.
	Trace         *obs.Recorder
	TraceRingBase int
}

func (c *Config) fillDefaults() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 4
	}
	if len(c.Priorities) == 0 {
		c.Priorities = []Class{ClassWAL, ClassPageRead, ClassWriteback, ClassCheckpoint, ClassBackup, ClassRepl}
	}
}

// fileState tracks the per-file write/sync barrier accounting. Writes count
// as completed when the device call returns (even if the completion is
// being withheld by reorder injection, and even if the request failed) so
// that sync barriers always become eligible.
type fileState struct {
	writesSubmitted uint64
	writesCompleted uint64
	queuedWrites    int
	inflightWrites  int
	parkedSyncs     []*Request // barrier not yet satisfied
	reorderParked   []*Request // completed writes withheld by fault injection
}

func (fs *fileState) quiescent() bool {
	return fs.queuedWrites == 0 && fs.inflightWrites == 0 &&
		len(fs.parkedSyncs) == 0 && len(fs.reorderParked) == 0
}

type classCounters struct {
	submitted    uint64
	completed    uint64
	errors       uint64
	retries      uint64
	injected     uint64
	bytesRead    uint64
	bytesWritten uint64
	syncs        uint64
	inflight     int
}

// Scheduler is the I/O scheduler. All methods are safe for concurrent use.
type Scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond
	cfg  Config

	queues      [NumClasses][]*Request
	queuedTotal int
	files       map[*dev.File]*fileState
	pending     int // queued + inflight + parked: outstanding completions

	faults [NumClasses]Fault
	rng    *sys.Rand

	closing bool // no new submissions; drain in progress
	closed  bool // workers may exit
	aborted bool

	counters  [NumClasses]classCounters
	lat       [NumClasses]*metrics.Histogram
	trace     *obs.Recorder
	traceBase int
	wg        sync.WaitGroup
}

// New starts a scheduler with cfg.QueueDepth workers.
func New(cfg Config) *Scheduler {
	cfg.fillDefaults()
	s := &Scheduler{
		cfg:       cfg,
		files:     make(map[*dev.File]*fileState),
		rng:       sys.NewRand(0x105ced),
		trace:     cfg.Trace,
		traceBase: cfg.TraceRingBase,
	}
	s.cond = sync.NewCond(&s.mu)
	for c := range s.lat {
		s.lat[c] = metrics.NewHistogram()
	}
	s.wg.Add(cfg.QueueDepth)
	for i := 0; i < cfg.QueueDepth; i++ {
		go s.worker()
	}
	return s
}

// Submit enqueues one request. The request completes asynchronously; after
// Close or Abort it completes immediately with ErrClosed/ErrAborted.
func (s *Scheduler) Submit(r *Request) {
	r.done = make(chan struct{})
	s.mu.Lock()
	if !s.submitLocked(r) {
		err := ErrClosed
		if s.aborted {
			err = ErrAborted
		}
		s.mu.Unlock()
		r.Err = err
		s.deliver(r)
		return
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// SubmitBatch enqueues several requests under one lock hold.
func (s *Scheduler) SubmitBatch(rs []*Request) {
	for _, r := range rs {
		r.done = make(chan struct{})
	}
	var rejected []*Request
	s.mu.Lock()
	for _, r := range rs {
		if !s.submitLocked(r) {
			rejected = append(rejected, r)
		}
	}
	err := ErrClosed
	if s.aborted {
		err = ErrAborted
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, r := range rejected {
		r.Err = err
		s.deliver(r)
	}
}

func (s *Scheduler) submitLocked(r *Request) bool {
	if s.closing || s.closed {
		return false
	}
	s.pending++
	s.counters[r.Class].submitted++
	fs := s.fileStateLocked(r.File)
	switch r.Op {
	case OpWrite:
		fs.writesSubmitted++
		fs.queuedWrites++
		s.enqueueLocked(r, false)
	case OpSync:
		r.barrier = fs.writesSubmitted
		if fs.writesCompleted >= r.barrier {
			s.enqueueLocked(r, false)
		} else {
			fs.parkedSyncs = append(fs.parkedSyncs, r)
		}
	default:
		s.enqueueLocked(r, false)
	}
	return true
}

func (s *Scheduler) fileStateLocked(f *dev.File) *fileState {
	fs := s.files[f]
	if fs == nil {
		fs = &fileState{}
		s.files[f] = fs
	}
	return fs
}

func (s *Scheduler) enqueueLocked(r *Request, front bool) {
	q := s.queues[r.Class]
	if front {
		q = append(q, nil)
		copy(q[1:], q)
		q[0] = r
	} else {
		q = append(q, r)
	}
	s.queues[r.Class] = q
	s.queuedTotal++
}

// popLocked removes the highest-priority queued request.
func (s *Scheduler) popLocked() *Request {
	for _, c := range s.cfg.Priorities {
		if q := s.queues[c]; len(q) > 0 {
			r := q[0]
			q[0] = nil
			s.queues[c] = q[1:]
			if len(s.queues[c]) == 0 {
				// Reset so the backing array is reusable instead of
				// creeping forward forever.
				s.queues[c] = q[:0]
			}
			s.queuedTotal--
			return r
		}
	}
	return nil
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	batch := make([]*Request, 0, 16)
	for {
		s.mu.Lock()
		for s.queuedTotal == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.queuedTotal == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		batch = batch[:0]
		for len(batch) < s.cfg.BatchSize && s.queuedTotal > 0 {
			r := s.popLocked()
			s.counters[r.Class].inflight++
			if r.Op == OpWrite {
				fs := s.fileStateLocked(r.File)
				fs.queuedWrites--
				fs.inflightWrites++
			}
			batch = append(batch, r)
		}
		s.mu.Unlock()
		for _, r := range batch {
			s.execute(r)
		}
	}
}

// execute runs one dequeued request on the device, applying fault
// injection, then routes the completion.
func (s *Scheduler) execute(r *Request) {
	if r.Op == OpSync {
		// Reordered completions must all be delivered strictly before
		// the barrier completes (trigger b in fault.go).
		s.releaseReordered(r.File)
	}
	s.trace.Record(s.traceBase+int(r.Class), obs.EvIODispatch, uint64(r.Op), uint64(len(r.Buf)))
	start := time.Now()
	for attempt := 0; ; attempt++ {
		inject, extra := s.faultDecision(r.Class)
		if extra > 0 {
			time.Sleep(extra)
		}
		if inject {
			r.Err = ErrInjected
		} else {
			r.Err = nil
			switch r.Op {
			case OpRead:
				r.N = r.File.ReadAt(r.Buf, r.Off)
			case OpWrite:
				r.File.WriteAt(r.Buf, r.Off)
				r.N = len(r.Buf)
			case OpSync:
				r.File.Sync()
			}
		}
		if r.Err == nil || attempt >= r.Retries {
			break
		}
		s.mu.Lock()
		s.counters[r.Class].retries++
		s.mu.Unlock()
	}
	s.lat[r.Class].Observe(time.Since(start))
	s.trace.Record(s.traceBase+int(r.Class), obs.EvIOComplete, uint64(r.Op), uint64(r.N))

	s.mu.Lock()
	s.counters[r.Class].inflight--
	if r.Op == OpWrite {
		fs := s.fileStateLocked(r.File)
		fs.inflightWrites--
		fs.writesCompleted++
		s.wakeSyncsLocked(fs)
		if !s.closing && s.faults[r.Class].ReorderWindow > 1 {
			release := s.parkReorderedLocked(fs, r)
			s.maybeReapLocked(r.File, fs)
			s.mu.Unlock()
			for _, pr := range release {
				s.deliver(pr)
			}
			return
		}
		s.maybeReapLocked(r.File, fs)
	} else if r.Op == OpSync {
		if fs := s.files[r.File]; fs != nil {
			s.maybeReapLocked(r.File, fs)
		}
	}
	s.mu.Unlock()
	s.deliver(r)
}

// wakeSyncsLocked moves barrier-satisfied parked syncs to the front of
// their class queue so the barrier completes ahead of later submissions.
func (s *Scheduler) wakeSyncsLocked(fs *fileState) {
	if len(fs.parkedSyncs) == 0 {
		return
	}
	kept := fs.parkedSyncs[:0]
	for _, sr := range fs.parkedSyncs {
		if fs.writesCompleted >= sr.barrier {
			s.enqueueLocked(sr, true)
		} else {
			kept = append(kept, sr)
		}
	}
	fs.parkedSyncs = kept
	s.cond.Broadcast()
}

// maybeReapLocked drops quiescent per-file state so archived/removed files
// do not accumulate map entries over the engine's lifetime.
func (s *Scheduler) maybeReapLocked(f *dev.File, fs *fileState) {
	if fs.quiescent() {
		delete(s.files, f)
	}
}

// deliver finishes a request: stats, callback, handle, drain accounting.
func (s *Scheduler) deliver(r *Request) {
	s.mu.Lock()
	ctr := &s.counters[r.Class]
	ctr.completed++
	if r.Err != nil {
		ctr.errors++
		if errors.Is(r.Err, ErrInjected) {
			ctr.injected++
		}
	} else {
		switch r.Op {
		case OpRead:
			ctr.bytesRead += uint64(r.N)
		case OpWrite:
			ctr.bytesWritten += uint64(r.N)
		case OpSync:
			ctr.syncs++
		}
	}
	s.pending--
	if s.pending == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	if r.OnComplete != nil {
		r.OnComplete(r)
	}
	close(r.done)
}

// Close drains every outstanding request, then stops the workers. New
// submissions fail with ErrClosed once Close has begun.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closing = true
	s.cond.Broadcast()
	for s.pending > 0 {
		s.cond.Wait()
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Abort models a crash: every queued request, parked sync, and withheld
// completion is failed or delivered immediately without touching the
// device; requests already executing finish their device call (the device's
// own Crash drops unsynced data). The scheduler is unusable afterwards.
func (s *Scheduler) Abort() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closing = true
	s.aborted = true
	var victims []*Request
	for c := range s.queues {
		victims = append(victims, s.queues[c]...)
		s.queues[c] = nil
	}
	s.queuedTotal = 0
	var withheld []*Request
	for f, fs := range s.files {
		victims = append(victims, fs.parkedSyncs...)
		withheld = append(withheld, fs.reorderParked...)
		fs.parkedSyncs, fs.reorderParked = nil, nil
		fs.queuedWrites = 0
		if fs.inflightWrites == 0 {
			delete(s.files, f)
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, r := range victims {
		r.Err = ErrAborted
		s.deliver(r)
	}
	for _, r := range withheld {
		s.deliver(r) // device call already happened; keep its result
	}
	s.mu.Lock()
	for s.pending > 0 {
		s.cond.Wait()
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Read submits an asynchronous read into buf at off.
func (s *Scheduler) Read(c Class, f *dev.File, buf []byte, off int64, retries int) *Request {
	r := &Request{Op: OpRead, Class: c, File: f, Buf: buf, Off: off, Retries: retries}
	s.Submit(r)
	return r
}

// Write submits an asynchronous write of buf at off. buf is aliased until
// the request completes.
func (s *Scheduler) Write(c Class, f *dev.File, buf []byte, off int64, retries int) *Request {
	r := &Request{Op: OpWrite, Class: c, File: f, Buf: buf, Off: off, Retries: retries}
	s.Submit(r)
	return r
}

// WriteCb is Write with a completion callback (runs on a worker; must not
// block or re-enter the scheduler).
func (s *Scheduler) WriteCb(c Class, f *dev.File, buf []byte, off int64, retries int, cb func(*Request)) *Request {
	r := &Request{Op: OpWrite, Class: c, File: f, Buf: buf, Off: off, Retries: retries, OnComplete: cb}
	s.Submit(r)
	return r
}

// Sync submits a durability barrier over all writes previously submitted to
// f. It executes only after those writes complete.
func (s *Scheduler) Sync(c Class, f *dev.File, retries int) *Request {
	r := &Request{Op: OpSync, Class: c, File: f, Retries: retries}
	s.Submit(r)
	return r
}

// SyncCb is Sync with a completion callback.
func (s *Scheduler) SyncCb(c Class, f *dev.File, retries int, cb func(*Request)) *Request {
	r := &Request{Op: OpSync, Class: c, File: f, Retries: retries, OnComplete: cb}
	s.Submit(r)
	return r
}

// WriteSyncCb submits a write of buf at off immediately followed by a
// durability barrier over f, and invokes cb with the first error (write,
// then sync) once the barrier completes — the completion-driven durable-
// write hook for commit pipelines. Unlike OnComplete callbacks, cb runs on
// a detached goroutine and may block or re-enter the scheduler. buf is
// aliased until cb fires.
func (s *Scheduler) WriteSyncCb(c Class, f *dev.File, buf []byte, off int64, retries int, cb func(error)) {
	w := &Request{Op: OpWrite, Class: c, File: f, Buf: buf, Off: off, Retries: retries}
	sy := &Request{Op: OpSync, Class: c, File: f, Retries: retries}
	s.SubmitBatch([]*Request{w, sy})
	go func() {
		err := w.Wait()
		if serr := sy.Wait(); err == nil {
			err = serr
		}
		cb(err)
	}()
}

// ReadWait is a synchronous facade over Read.
func (s *Scheduler) ReadWait(c Class, f *dev.File, buf []byte, off int64, retries int) (int, error) {
	r := s.Read(c, f, buf, off, retries)
	err := r.Wait()
	return r.N, err
}

// WriteWait is a synchronous facade over Write; the buffer is free for
// reuse when it returns.
func (s *Scheduler) WriteWait(c Class, f *dev.File, buf []byte, off int64, retries int) error {
	return s.Write(c, f, buf, off, retries).Wait()
}

// SyncWait is a synchronous facade over Sync.
func (s *Scheduler) SyncWait(c Class, f *dev.File, retries int) error {
	return s.Sync(c, f, retries).Wait()
}

// ClassStats is a stats snapshot for one request class.
type ClassStats struct {
	Submitted    uint64
	Completed    uint64
	Errors       uint64 // final errors after retries (includes aborts)
	Retries      uint64
	Injected     uint64
	BytesRead    uint64
	BytesWritten uint64
	Syncs        uint64
	QueueLen     int
	Inflight     int
	MeanLatency  time.Duration
	P99Latency   time.Duration
}

// Stats is a point-in-time snapshot across all classes.
type Stats struct {
	Classes [NumClasses]ClassStats
}

// Bytes returns total device bytes moved (reads + writes) across classes.
func (st Stats) Bytes() uint64 {
	var n uint64
	for _, c := range st.Classes {
		n += c.BytesRead + c.BytesWritten
	}
	return n
}

// Stats snapshots the per-class counters and latency quantiles.
func (s *Scheduler) Stats() Stats {
	var st Stats
	s.mu.Lock()
	for c := range st.Classes {
		ctr := s.counters[c]
		st.Classes[c] = ClassStats{
			Submitted:    ctr.submitted,
			Completed:    ctr.completed,
			Errors:       ctr.errors,
			Retries:      ctr.retries,
			Injected:     ctr.injected,
			BytesRead:    ctr.bytesRead,
			BytesWritten: ctr.bytesWritten,
			Syncs:        ctr.syncs,
			QueueLen:     len(s.queues[c]),
			Inflight:     ctr.inflight,
		}
	}
	s.mu.Unlock()
	for c := range st.Classes {
		if s.lat[c].Count() > 0 {
			st.Classes[c].MeanLatency = s.lat[c].Mean()
			st.Classes[c].P99Latency = s.lat[c].Quantile(0.99)
		}
	}
	return st
}

// RegisterObs absorbs the scheduler's per-class counters, queue-depth
// gauges, and latency histograms into the central registry. The Sampler
// Register below stays as the thin harness-compat accessor over the same
// counters.
func (s *Scheduler) RegisterObs(reg *obs.Registry) {
	for c := Class(0); c < NumClasses; c++ {
		c := c
		name := "io_" + c.String()
		reg.CounterFunc(name+"_bytes_read_total", func() uint64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.counters[c].bytesRead
		})
		reg.CounterFunc(name+"_bytes_written_total", func() uint64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.counters[c].bytesWritten
		})
		reg.CounterFunc(name+"_completed_total", func() uint64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.counters[c].completed
		})
		reg.CounterFunc(name+"_errors_total", func() uint64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.counters[c].errors
		})
		reg.CounterFunc(name+"_syncs_total", func() uint64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.counters[c].syncs
		})
		reg.GaugeFunc(name+"_queue_depth", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.queues[c]) + s.counters[c].inflight)
		})
		reg.RegisterHistogram(name+"_latency_ns", s.lat[c])
	}
}

// Register exports per-class throughput counters and queue-depth gauges on
// a harness sampler under io.<class>.* names.
func (s *Scheduler) Register(sampler *metrics.Sampler) {
	for c := Class(0); c < NumClasses; c++ {
		c := c
		sampler.Counter("io."+c.String()+".bytes", func() uint64 {
			s.mu.Lock()
			n := s.counters[c].bytesRead + s.counters[c].bytesWritten
			s.mu.Unlock()
			return n
		})
		sampler.Gauge("io."+c.String()+".queue", func() float64 {
			s.mu.Lock()
			n := len(s.queues[c]) + s.counters[c].inflight
			s.mu.Unlock()
			return float64(n)
		})
	}
}
