// Command repro regenerates the tables and figures of "Rethinking Logging,
// Checkpoints, and Recovery for High-Performance Storage Engines" (SIGMOD
// 2020) on the simulated-device reproduction in this repository.
//
// Usage:
//
//	repro <experiment> [flags]
//
// Experiments:
//
//	fig8             TPC-C scalability across logging designs
//	fig9             TPC-C behaviour over time (in/out of memory)
//	fig10            YCSB updates vs Zipf skew
//	fig11            commit latencies by flush strategy
//	fig12            textbook full-checkpoint engine vs ours
//	tab1             Table 1 component dissection
//	tab-warehouses   §4.1 remote flushes vs warehouse count
//	tab-undo         §3.6 undo-image log volume
//	tab-compression  §3.8 log compression savings
//	recovery         §4.6 crash recovery phases and rates
//	ablate           design-knob ablations (shards, intervals, chunks)
//	ablate-io        I/O scheduler queue-depth × batch-size ablation
//	ablate-commit    centralized vs decentralized group-commit pipeline
//	ablate-recovery  restart log-size × recovery-mode sweep (ttft vs total)
//	ablate-pitr      cold PITR archive-size × store-model sweep vs local restart
//	ablate-replication  WAL-shipping read-replica scaling sweep
//	ablate-sharding  range-sharded TPC-C scale-out sweep + 2PC crash equivalence
//	ablate-server    network front end: pipelining, overhead, admission control
//	obs-overhead     observability subsystem cost (tracing on vs off)
//	commit-stages    per-stage commit latency split (append/queue/flush/ack)
//	flight           crash flight-recorder post-mortem
//	all              everything above
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repro <experiment> [-scale tiny|small|medium] [-threads N]\n")
		flag.PrintDefaults()
	}
	if len(os.Args) < 2 {
		flag.Usage()
		os.Exit(2)
	}
	exp := os.Args[1]
	fs := flag.NewFlagSet(exp, flag.ExitOnError)
	scaleName := fs.String("scale", "small", "workload scale: tiny|small|medium")
	threads := fs.Int("threads", 4, "worker threads for fixed-thread experiments")
	gate := fs.Bool("gate", false, "exit non-zero when the experiment's headline trend does not hold (ablate-recovery, ablate-pitr, ablate-replication, ablate-sharding, ablate-server)")
	fs.Parse(os.Args[2:])

	sc, err := harness.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	w := os.Stdout
	fmt.Fprintf(w, "repro: experiment=%s scale=%s threads=%d (simulated PMem+SSD; see EXPERIMENTS.md for shape targets)\n",
		exp, sc.Name, *threads)

	run := func(name string) error {
		switch name {
		case "fig8":
			_, err := harness.Fig8(w, sc)
			return err
		case "fig9":
			_, err := harness.Fig9(w, sc, *threads)
			return err
		case "fig10":
			_, err := harness.Fig10(w, sc, *threads)
			return err
		case "fig11":
			_, err := harness.Fig11(w, sc, *threads)
			return err
		case "fig12":
			_, err := harness.Fig12(w, sc, *threads)
			return err
		case "tab1":
			_, err := harness.Table1(w, sc, *threads)
			return err
		case "tab-warehouses":
			_, err := harness.TabWarehouses(w, sc, *threads)
			return err
		case "tab-undo":
			_, _, err := harness.UndoVolume(w, sc, *threads)
			return err
		case "tab-compression":
			_, _, err := harness.CompressionVolume(w, sc, *threads)
			return err
		case "recovery":
			_, err := harness.Recovery(w, sc, *threads)
			return err
		case "ablate":
			if err := harness.AblateShards(w, sc, *threads); err != nil {
				return err
			}
			if err := harness.AblateGroupCommitInterval(w, sc, *threads); err != nil {
				return err
			}
			return harness.AblateChunkSize(w, sc, *threads)
		case "ablate-io":
			return harness.AblateIO(w, sc, *threads)
		case "ablate-commit":
			return harness.AblateCommit(w, sc, *threads)
		case "ablate-recovery":
			rows, err := harness.AblateRecovery(w, sc, *threads)
			if err != nil {
				return err
			}
			if *gate && len(rows) > 0 {
				// CI gate: at the largest log, on-demand restart must serve
				// traffic well before blocking redo would even finish.
				last := rows[len(rows)-1]
				if last.TTFT[2] > last.Total[0]*8/10 {
					return fmt.Errorf("recovery gate: on-demand time-to-first-txn %v is not under 80%% of blocking recovery %v",
						last.TTFT[2], last.Total[0])
				}
				fmt.Fprintf(w, "recovery gate: ok — on-demand served after %v, blocking recovery took %v\n",
					last.TTFT[2], last.Total[0])
			}
			return nil
		case "ablate-pitr":
			rows, err := harness.AblatePITR(w, sc, *threads)
			if err != nil {
				return err
			}
			if *gate && len(rows) > 0 {
				// CI gate: point-in-time restore must be exact — any target
				// GSN yields precisely the committed prefix, with a
				// transaction spanning the cut rolled back (crash-equivalence
				// style randomized check).
				if err := harness.PITREquivalence(w); err != nil {
					return err
				}
			}
			return nil
		case "ablate-replication":
			rows, err := harness.AblateReplication(w, sc, *threads)
			if err != nil {
				return err
			}
			if *gate && len(rows) == 4 {
				// CI gate: aggregate replica reads must scale with replica
				// count (monotone 1->2->4, >=2.5x at 4), the primary's commit
				// median must stay within noise of the no-replica baseline,
				// and lag must return to zero once the burst quiesces.
				base, r1, r2, r4 := rows[0], rows[1], rows[2], rows[3]
				if !(r1.ReadsPerSec < r2.ReadsPerSec && r2.ReadsPerSec < r4.ReadsPerSec) {
					return fmt.Errorf("replication gate: reads not monotone in replica count: %.0f / %.0f / %.0f",
						r1.ReadsPerSec, r2.ReadsPerSec, r4.ReadsPerSec)
				}
				if r4.ReadsPerSec < 2.5*r1.ReadsPerSec {
					return fmt.Errorf("replication gate: 4 replicas give %.2fx of 1 replica, want >= 2.5x",
						r4.ReadsPerSec/r1.ReadsPerSec)
				}
				const slack = 500 * time.Microsecond
				if r4.CommitP50 > 3*base.CommitP50 && r4.CommitP50 > base.CommitP50+slack {
					return fmt.Errorf("replication gate: commit p50 degraded %v -> %v with 4 replicas",
						base.CommitP50, r4.CommitP50)
				}
				if r4.CommitMean > 3*base.CommitMean && r4.CommitMean > base.CommitMean+slack {
					return fmt.Errorf("replication gate: commit mean degraded %v -> %v with 4 replicas",
						base.CommitMean, r4.CommitMean)
				}
				for _, r := range rows {
					if r.FinalLag != 0 {
						return fmt.Errorf("replication gate: %d-replica cell left lag %d after quiesce",
							r.Replicas, r.FinalLag)
					}
				}
				fmt.Fprintf(w, "replication gate: ok — reads %.0f/%.0f/%.0f per sec (%.2fx at 4), commit mean %v -> %v\n",
					r1.ReadsPerSec, r2.ReadsPerSec, r4.ReadsPerSec,
					r4.ReadsPerSec/r1.ReadsPerSec, base.CommitMean, r4.CommitMean)
			}
			return nil
		case "ablate-sharding":
			rows, err := harness.AblateSharding(w, sc)
			if err != nil {
				return err
			}
			// Atomicity is part of the headline: every recovery mode must
			// resolve a coordinator crash identically on all participants.
			fmt.Fprintln(w, "2PC crash equivalence across recovery modes:")
			if err := harness.ShardingCrashEquivalence(w); err != nil {
				return err
			}
			if *gate && len(rows) == 4 {
				// CI gate: the cluster layer must not tax single-shard
				// traffic (within 5% of the unsharded engine), and four
				// shards (four devices) must clear 2x one shard despite the
				// cross-shard 2PC share of the mix.
				base, s1, s4 := rows[0], rows[1], rows[3]
				if s1.TPS < 0.95*base.TPS {
					return fmt.Errorf("sharding gate: one shard gives %.0f txn/s vs %.0f unsharded (%.1f%% deficit, want <= 5%%)",
						s1.TPS, base.TPS, 100*(1-s1.TPS/base.TPS))
				}
				if s4.TPS < 2.0*s1.TPS {
					return fmt.Errorf("sharding gate: 4 shards give %.2fx of 1 shard, want >= 2x",
						s4.TPS/s1.TPS)
				}
				if s4.CrossPct <= 0 {
					return fmt.Errorf("sharding gate: 4-shard cell saw no cross-shard commits; sweep is not exercising 2PC")
				}
				fmt.Fprintf(w, "sharding gate: ok — unsharded %.0f, 1 shard %.0f, 4 shards %.0f txn/s (%.2fx, %.1f%% cross-shard)\n",
					base.TPS, s1.TPS, s4.TPS, s4.TPS/s1.TPS, s4.CrossPct)
			}
			return nil
		case "ablate-server":
			res, err := harness.AblateServer(w, sc, *threads)
			if err != nil {
				return err
			}
			if *gate {
				// CI gate: pipelining must at least double one-request-per-RTT
				// throughput on the same connections; the served path must stay
				// within 15% of embedded sessions at equal worker count; and
				// past saturation admission control must shed while the p99 of
				// admitted transactions stays bounded (no unshed collapse).
				if res.Conns < 8 {
					return fmt.Errorf("server gate: ran with %d conns, want >= 8", res.Conns)
				}
				if res.PipelinedTPS < 2.0*res.RTTTPS {
					return fmt.Errorf("server gate: pipelined %.0f txn/s is %.2fx of 1-req/RTT %.0f, want >= 2x",
						res.PipelinedTPS, res.PipelinedTPS/res.RTTTPS, res.RTTTPS)
				}
				if res.ServedTPS < 0.85*res.EmbeddedTPS {
					return fmt.Errorf("server gate: served %.0f txn/s vs embedded %.0f (%.1f%% overhead, want <= 15%%)",
						res.ServedTPS, res.EmbeddedTPS, 100*(1-res.ServedTPS/res.EmbeddedTPS))
				}
				over := res.OpenLoop[len(res.OpenLoop)-1]
				if over.OfferedMult <= 1 {
					return fmt.Errorf("server gate: no over-capacity open-loop cell")
				}
				if over.ShedFrac <= 0 {
					return fmt.Errorf("server gate: %.2fx capacity shed nothing; admission control inert", over.OfferedMult)
				}
				if over.P99 > 2*time.Second {
					return fmt.Errorf("server gate: p99 of admitted txns %v under %.2fx overload, want bounded (<= 2s)",
						over.P99, over.OfferedMult)
				}
				fmt.Fprintf(w, "server gate: ok — pipelined %.2fx of 1-req/RTT, served at %.0f%% of embedded, %.1f%% shed at %.2fx with admitted p99 %v\n",
					res.PipelinedTPS/res.RTTTPS, 100*res.ServedTPS/res.EmbeddedTPS,
					100*over.ShedFrac, over.OfferedMult, over.P99)
			}
			return nil
		case "obs-overhead":
			_, err := harness.ObsOverhead(w, sc)
			return err
		case "commit-stages":
			return harness.CommitStageTable(w, sc, *threads)
		case "flight":
			return harness.FlightPostMortem(w, sc, *threads)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	if exp == "all" {
		for _, name := range []string{
			"fig8", "tab-warehouses", "fig9", "tab1", "fig10", "fig11",
			"recovery", "fig12", "tab-undo", "tab-compression", "ablate",
			"ablate-io", "ablate-commit", "ablate-recovery", "ablate-pitr",
			"ablate-replication", "ablate-sharding", "ablate-server", "obs-overhead",
			"commit-stages", "flight",
		} {
			if err := run(name); err != nil {
				fmt.Fprintf(os.Stderr, "repro %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		return
	}
	if err := run(exp); err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(1)
	}
}
