// Command ycsb runs the §4.4 YCSB-style workload (100% single-tuple
// updates, Zipfian keys) against any logging mode, reporting throughput,
// commit latency percentiles, and the RFA remote-flush rate. With
// -shards N the table is range-partitioned over N engines in one process;
// every update is single-shard, so the cluster routes it onto the owning
// engine's unmodified commit path.
//
//	go run ./cmd/ycsb -mode ours -records 100000 -theta 0.75 -threads 4 -duration 5s
//	go run ./cmd/ycsb -mode ours -records 100000 -shards 4 -duration 5s
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/txn"
	"repro/internal/workload"
)

var modes = map[string]core.Mode{
	"ours":             core.ModeOurs,
	"no-rfa":           core.ModeNoRFA,
	"group-commit":     core.ModeGroupCommit,
	"group-commit+rfa": core.ModeGroupCommitRFA,
	"aries":            core.ModeARIES,
	"aether":           core.ModeAether,
	"silor":            core.ModeSiloR,
	"no-logging":       core.ModeNoLogging,
}

// recordBoundaries splits the 8-byte big-endian key space of records evenly
// across shards: boundary i is the first key owned by shard i+1.
func recordBoundaries(records, shards int) [][]byte {
	bounds := make([][]byte, 0, shards-1)
	for i := 1; i < shards; i++ {
		bounds = append(bounds, binary.BigEndian.AppendUint64(nil, uint64(records*i/shards)))
	}
	return bounds
}

func main() {
	modeName := flag.String("mode", "ours", "logging mode")
	records := flag.Int("records", 100000, "table size (paper: 500M)")
	theta := flag.Float64("theta", 0.0, "Zipf skew (paper sweeps 0..1.75)")
	threads := flag.Int("threads", 4, "benchmark worker goroutines")
	workers := flag.Int("workers", 0, "engine worker slots / log partitions (default: threads)")
	shards := flag.Int("shards", 1, "range-partitioned engines in this process")
	duration := flag.Duration("duration", 5*time.Second, "measurement duration")
	measureLatency := flag.Bool("latency", true, "record per-txn commit latency (sync commits)")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/trace and /debug/pprof on this address")
	flag.Parse()

	mode, ok := modes[*modeName]
	if !ok {
		log.Fatalf("unknown mode %q", *modeName)
	}
	if *workers == 0 {
		*workers = *threads
	}
	ecfg := core.Config{
		Mode:      mode,
		Workers:   *workers,
		PoolPages: 8192,
		WALLimit:  256 << 20,
		ObsAddr:   *obsAddr,
	}

	// Open the store: one engine, or a range-sharded cluster of them.
	var (
		eng *core.Engine
		cl  *shard.Cluster
		err error
	)
	if *shards > 1 {
		cl, err = shard.Open(shard.Config{
			Shards:     *shards,
			Boundaries: recordBoundaries(*records, *shards),
			Engine:     ecfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		eng = cl.Engine(0) // observability endpoint + representative stats
		defer cl.Close()
	} else {
		eng, err = core.Open(ecfg)
		if err != nil {
			log.Fatal(err)
		}
		defer eng.Close()
	}
	if a := eng.ObsAddr(); a != "" {
		fmt.Printf("observability endpoint: http://%s/metrics\n", a)
	}

	engines := []*core.Engine{eng}
	if cl != nil {
		engines = engines[:0]
		for i := 0; i < cl.Shards(); i++ {
			engines = append(engines, cl.Engine(i))
		}
	}
	slots := eng.Workers()
	newSession := func(i int) workload.Session {
		if cl != nil {
			return cl.NewSessionOn(i % slots)
		}
		return eng.NewSessionOn(i % slots)
	}

	s := newSession(0)
	var tree workload.Tree
	if cl != nil {
		tr, err := cl.CreateTree("ycsb", false)
		if err != nil {
			log.Fatal(err)
		}
		tree = workload.WrapShardTree(tr)
	} else {
		tr, err := eng.CreateTree(s.(*txn.Session), "ycsb")
		if err != nil {
			log.Fatal(err)
		}
		tree = workload.WrapBTree(tr)
	}
	y := workload.NewYCSB(tree, *records)
	fmt.Printf("loading %d records...\n", *records)
	if err := y.Load(s, 2000); err != nil {
		log.Fatal(err)
	}

	hist := metrics.NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < *threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Pin to the engine's actual worker slots (the engine may have
			// clamped or defaulted the requested count).
			ws := newSession(i)
			defer func() {
				if r := recover(); r != nil {
					if r == buffer.ErrPoolInterrupted {
						ws.(interface{ AbandonForCrash() }).AbandonForCrash()
						return
					}
					panic(r)
				}
			}()
			if *measureLatency {
				ws.(interface{ SetSyncCommit(bool) }).SetSyncCommit(true)
			}
			w := y.NewWorker(uint64(i)*97+3, *theta)
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				if err := w.UpdateTxn(ws); err == nil && *measureLatency {
					hist.Observe(time.Since(start))
				}
			}
		}(i)
	}

	durable := func() (st txn.Stats) {
		for _, e := range engines {
			es := e.Txns().Stats()
			st.DurableCommits += es.DurableCommits
			st.RFASkips += es.RFASkips
			st.RFAFlushes += es.RFAFlushes
		}
		return
	}
	before := durable()
	start := time.Now()
	time.Sleep(*duration)
	after := durable()
	elapsed := time.Since(start).Seconds()
	close(stop)
	for _, e := range engines {
		e.Interrupt()
	}
	wg.Wait()

	committed := after.DurableCommits - before.DurableCommits
	fmt.Printf("\n=== summary (%s, theta=%.2f, %d threads, %d shard(s), %.0fs) ===\n",
		mode, *theta, *threads, len(engines), elapsed)
	fmt.Printf("throughput:     %.0f txn/s (%d committed)\n", float64(committed)/elapsed, committed)
	if tot := (after.RFASkips - before.RFASkips) + (after.RFAFlushes - before.RFAFlushes); tot > 0 {
		fmt.Printf("remote flushes: %.1f%%\n", 100*float64(after.RFAFlushes-before.RFAFlushes)/float64(tot))
	}
	if *measureLatency && hist.Count() > 0 {
		fmt.Printf("latency:        median=%v p99=%v mean=%v\n",
			hist.Quantile(0.5), hist.Quantile(0.99), hist.Mean())
	}
	var appended uint64
	for _, e := range engines {
		appended += e.Stats().WAL.AppendedBytes
	}
	fmt.Printf("log volume:     %.1f MiB appended\n", float64(appended)/(1<<20))
}
