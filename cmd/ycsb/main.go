// Command ycsb runs the §4.4 YCSB-style workload (100% single-tuple
// updates, Zipfian keys) against any logging mode, reporting throughput,
// commit latency percentiles, and the RFA remote-flush rate.
//
//	go run ./cmd/ycsb -mode ours -records 100000 -theta 0.75 -threads 4 -duration 5s
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

var modes = map[string]core.Mode{
	"ours":             core.ModeOurs,
	"no-rfa":           core.ModeNoRFA,
	"group-commit":     core.ModeGroupCommit,
	"group-commit+rfa": core.ModeGroupCommitRFA,
	"aries":            core.ModeARIES,
	"aether":           core.ModeAether,
	"silor":            core.ModeSiloR,
	"no-logging":       core.ModeNoLogging,
}

func main() {
	modeName := flag.String("mode", "ours", "logging mode")
	records := flag.Int("records", 100000, "table size (paper: 500M)")
	theta := flag.Float64("theta", 0.0, "Zipf skew (paper sweeps 0..1.75)")
	threads := flag.Int("threads", 4, "benchmark worker goroutines")
	workers := flag.Int("workers", 0, "engine worker slots / log partitions (default: threads)")
	duration := flag.Duration("duration", 5*time.Second, "measurement duration")
	measureLatency := flag.Bool("latency", true, "record per-txn commit latency (sync commits)")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/trace and /debug/pprof on this address")
	flag.Parse()

	mode, ok := modes[*modeName]
	if !ok {
		log.Fatalf("unknown mode %q", *modeName)
	}
	if *workers == 0 {
		*workers = *threads
	}
	eng, err := core.Open(core.Config{
		Mode:      mode,
		Workers:   *workers,
		PoolPages: 8192,
		WALLimit:  256 << 20,
		ObsAddr:   *obsAddr,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	if a := eng.ObsAddr(); a != "" {
		fmt.Printf("observability endpoint: http://%s/metrics\n", a)
	}

	s := eng.NewSessionOn(0)
	tree, err := eng.CreateTree(s, "ycsb")
	if err != nil {
		log.Fatal(err)
	}
	y := workload.NewYCSB(workload.WrapBTree(tree), *records)
	fmt.Printf("loading %d records...\n", *records)
	if err := y.Load(s, 2000); err != nil {
		log.Fatal(err)
	}

	hist := metrics.NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < *threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Pin to the engine's actual worker slots (the engine may have
			// clamped or defaulted the requested count).
			ws := eng.NewSessionOn(i % eng.Workers())
			defer func() {
				if r := recover(); r != nil {
					if r == buffer.ErrPoolInterrupted {
						ws.AbandonForCrash()
						return
					}
					panic(r)
				}
			}()
			if *measureLatency {
				ws.SetSyncCommit(true)
			}
			w := y.NewWorker(uint64(i)*97+3, *theta)
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				if err := w.UpdateTxn(ws); err == nil && *measureLatency {
					hist.Observe(time.Since(start))
				}
			}
		}(i)
	}

	before := eng.Txns().Stats()
	start := time.Now()
	time.Sleep(*duration)
	after := eng.Txns().Stats()
	elapsed := time.Since(start).Seconds()
	close(stop)
	eng.Interrupt()
	wg.Wait()

	committed := after.DurableCommits - before.DurableCommits
	fmt.Printf("\n=== summary (%s, theta=%.2f, %d threads, %.0fs) ===\n", mode, *theta, *threads, elapsed)
	fmt.Printf("throughput:     %.0f txn/s (%d committed)\n", float64(committed)/elapsed, committed)
	if tot := (after.RFASkips - before.RFASkips) + (after.RFAFlushes - before.RFAFlushes); tot > 0 {
		fmt.Printf("remote flushes: %.1f%%\n", 100*float64(after.RFAFlushes-before.RFAFlushes)/float64(tot))
	}
	if *measureLatency && hist.Count() > 0 {
		fmt.Printf("latency:        median=%v p99=%v mean=%v\n",
			hist.Quantile(0.5), hist.Quantile(0.99), hist.Mean())
	}
	st := eng.Stats()
	fmt.Printf("log volume:     %.1f MiB appended\n", float64(st.WAL.AppendedBytes)/(1<<20))

}
