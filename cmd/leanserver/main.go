// Command leanserver serves a database over the wire protocol: a network
// front end where each connection maps onto one engine transaction session,
// requests pipeline, and commit acknowledgements ride the group-commit
// flush. With -shards > 1 it fronts a range-sharded cluster instead of a
// single engine.
//
//	go run ./cmd/leanserver -addr 127.0.0.1:4700 -mode ours -workers 8
//	go run ./cmd/leanserver -shards 4 -boundaries g,n,t
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	leanstore "repro"
)

var modes = map[string]leanstore.Mode{
	"ours":             leanstore.ModeOurs,
	"no-rfa":           leanstore.ModeNoRFA,
	"group-commit":     leanstore.ModeGroupCommit,
	"group-commit+rfa": leanstore.ModeGroupCommitRFA,
	"aries":            leanstore.ModeARIES,
	"aether":           leanstore.ModeAether,
	"silor":            leanstore.ModeSiloR,
	"no-logging":       leanstore.ModeNoLogging,
}

func main() {
	addr := flag.String("addr", "127.0.0.1:4700", "listen address")
	modeName := flag.String("mode", "ours", "logging mode")
	workers := flag.Int("workers", 8, "engine worker slots / log partitions")
	poolPages := flag.Int("pool-pages", 8192, "buffer pool size in 16 KiB pages")
	walLimit := flag.Int64("wal-limit", 256<<20, "live WAL bound in bytes")
	shards := flag.Int("shards", 1, "number of range shards (1 = single engine)")
	boundaries := flag.String("boundaries", "", "comma-separated split keys (shards-1 of them)")
	maxConns := flag.Int("max-conns", 256, "connection limit")
	maxQueue := flag.Int("max-queue", 4096, "pending-request bound for admission control")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/trace and /debug/pprof on this address")
	flag.Parse()

	mode, ok := modes[*modeName]
	if !ok {
		log.Fatalf("unknown mode %q", *modeName)
	}
	opts := leanstore.Options{
		Mode:            mode,
		Workers:         *workers,
		BufferPoolPages: *poolPages,
		WALLimitBytes:   *walLimit,
		ObsAddr:         *obsAddr,
	}
	sopts := leanstore.ServerOptions{MaxConns: *maxConns, MaxQueue: *maxQueue}

	var srv *leanstore.Server
	var closeStore func() error
	if *shards > 1 {
		var bounds [][]byte
		if *boundaries != "" {
			for _, b := range strings.Split(*boundaries, ",") {
				bounds = append(bounds, []byte(b))
			}
		}
		if len(bounds) != *shards-1 {
			log.Fatalf("need %d boundaries for %d shards, got %d", *shards-1, *shards, len(bounds))
		}
		db, err := leanstore.OpenSharded(leanstore.ShardedOptions{
			Options: opts, Shards: *shards, Boundaries: bounds,
		})
		if err != nil {
			log.Fatal(err)
		}
		srv, closeStore = db.NewServer(sopts), db.Close
		if a := db.ObsAddr(); a != "" {
			fmt.Printf("observability endpoint: http://%s/metrics\n", a)
		}
	} else {
		db, err := leanstore.Open(opts)
		if err != nil {
			log.Fatal(err)
		}
		srv, closeStore = db.NewServer(sopts), db.Close
		if a := db.ObsAddr(); a != "" {
			fmt.Printf("observability endpoint: http://%s/metrics\n", a)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("\nshutting down...")
		srv.Close()
	}()

	fmt.Printf("leanserver: mode=%s workers=%d shards=%d listening on %s\n",
		mode, *workers, *shards, *addr)
	start := time.Now()
	err := srv.ListenAndServe(*addr)
	srv.Close()
	if cerr := closeStore(); cerr != nil {
		log.Fatal(cerr)
	}
	st := srv.Stats()
	fmt.Printf("served %d requests (%d shed) in %s\n",
		st.Requests, st.Shed, time.Since(start).Round(time.Millisecond))
	if err != nil && err != leanstore.ErrServerClosed {
		log.Fatal(err)
	}
}
