// Command tpcc runs the TPC-C benchmark (all five transactions, standard
// mix) against the engine in any logging mode, printing per-second
// throughput and a final summary with per-transaction-type counts, log
// statistics, and checkpoint activity. With -shards N it runs N
// range-partitioned engines in one process (warehouses spread evenly,
// Item replicated); remote-warehouse transactions then commit through
// cross-shard two-phase commit.
//
//	go run ./cmd/tpcc -mode ours -warehouses 4 -threads 4 -duration 10s
//	go run ./cmd/tpcc -mode ours -warehouses 8 -shards 4 -duration 10s
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/shard"
	"repro/internal/txn"
	"repro/internal/workload"
)

var modes = map[string]core.Mode{
	"ours":             core.ModeOurs,
	"no-rfa":           core.ModeNoRFA,
	"group-commit":     core.ModeGroupCommit,
	"group-commit+rfa": core.ModeGroupCommitRFA,
	"aries":            core.ModeARIES,
	"aether":           core.ModeAether,
	"silor":            core.ModeSiloR,
	"textbook":         core.ModeTextbook,
	"no-logging":       core.ModeNoLogging,
}

func main() {
	modeName := flag.String("mode", "ours", "logging mode: "+strings.Join(modeNames(), "|"))
	warehouses := flag.Int("warehouses", 4, "TPC-C warehouses")
	items := flag.Int("items", 2000, "items (spec: 100000)")
	custPerDist := flag.Int("customers", 150, "customers per district (spec: 3000)")
	threads := flag.Int("threads", 4, "benchmark worker goroutines")
	workers := flag.Int("workers", 0, "engine worker slots / log partitions (default: threads)")
	shards := flag.Int("shards", 1, "range-partitioned engines in this process")
	duration := flag.Duration("duration", 10*time.Second, "measurement duration")
	poolMiB := flag.Int("pool-mib", 64, "buffer pool size in MiB (per shard)")
	walMiB := flag.Int("wal-mib", 32, "WAL limit in MiB (per shard)")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/trace and /debug/pprof on this address (e.g. 127.0.0.1:9100)")
	flag.Parse()

	mode, ok := modes[*modeName]
	if !ok {
		log.Fatalf("unknown mode %q (want %s)", *modeName, strings.Join(modeNames(), "|"))
	}
	if *workers == 0 {
		*workers = *threads
	}
	ecfg := core.Config{
		Mode:      mode,
		Workers:   *workers,
		PoolPages: *poolMiB << 20 / (16 << 10),
		WALLimit:  int64(*walMiB) << 20,
		ObsAddr:   *obsAddr,
	}

	// Open the store: one engine, or a range-sharded cluster of them.
	var (
		eng *core.Engine
		cl  *shard.Cluster
		err error
	)
	if *shards > 1 {
		if *warehouses < *shards {
			log.Fatalf("need at least one warehouse per shard (%d warehouses, %d shards)", *warehouses, *shards)
		}
		cl, err = shard.Open(shard.Config{
			Shards:     *shards,
			Boundaries: harness.WarehouseBoundaries(*warehouses, *shards),
			Engine:     ecfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		eng = cl.Engine(0) // observability endpoint + representative stats
		defer cl.Close()
	} else {
		eng, err = core.Open(ecfg)
		if err != nil {
			log.Fatal(err)
		}
		defer eng.Close()
	}
	if a := eng.ObsAddr(); a != "" {
		fmt.Printf("observability endpoint: http://%s/metrics\n", a)
	}

	// Sessions are pinned to the engine's actual worker slots (which the
	// engine may have clamped or defaulted), not to the thread count.
	slots := eng.Workers()
	newSession := func(i int) workload.Session {
		if cl != nil {
			return cl.NewSessionOn(i % slots)
		}
		return eng.NewSessionOn(i % slots)
	}
	engines := []*core.Engine{eng}
	if cl != nil {
		engines = engines[:0]
		for i := 0; i < cl.Shards(); i++ {
			engines = append(engines, cl.Engine(i))
		}
	}
	durable := func() (n uint64) {
		for _, e := range engines {
			n += e.Txns().Stats().DurableCommits
		}
		return
	}
	liveWAL := func() (n uint64) {
		for _, e := range engines {
			n += e.WAL().LiveWALBytes()
		}
		return
	}

	fmt.Printf("loading TPC-C: %d warehouses, %d items, %d customers/district...\n",
		*warehouses, *items, *custPerDist)
	s := newSession(0)
	tp, err := workload.NewTPCC(*warehouses, func(name string) (workload.Tree, error) {
		if cl != nil {
			tr, err := cl.CreateTree(name, name == "tpcc_item")
			if err != nil {
				return nil, err
			}
			return workload.WrapShardTree(tr), nil
		}
		tr, err := eng.CreateTree(s.(*txn.Session), name)
		if err != nil {
			return nil, err
		}
		return workload.WrapBTree(tr), nil
	})
	if err != nil {
		log.Fatal(err)
	}
	tp.Items, tp.CustPerDist = *items, *custPerDist
	loadStart := time.Now()
	if err := tp.Load(s, 42); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded in %v (%d pages on shard 0)\n",
		time.Since(loadStart).Round(time.Millisecond), eng.Pool().NextPID())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < *threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ws := newSession(i)
			defer func() {
				if r := recover(); r != nil {
					if r == buffer.ErrPoolInterrupted {
						ws.(interface{ AbandonForCrash() }).AbandonForCrash()
						return
					}
					panic(r)
				}
			}()
			w := tp.NewWorker(uint64(i)*7919+1, i%*warehouses+1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				w.RunMix(ws)
			}
		}(i)
	}

	start := time.Now()
	prev := durable()
	ticker := time.NewTicker(time.Second)
	for time.Since(start) < *duration {
		<-ticker.C
		cur := durable()
		fmt.Printf("  t=%4.0fs  %8d txn/s   WAL %6.1f MiB\n",
			time.Since(start).Seconds(), cur-prev, float64(liveWAL())/(1<<20))
		prev = cur
	}
	ticker.Stop()
	close(stop)
	for _, e := range engines {
		e.Interrupt()
	}
	wg.Wait()

	elapsed := time.Since(start).Seconds()
	var tx txn.Stats
	var appended, ckptInc, ckptBytes, evict uint64
	for _, e := range engines {
		st := e.Stats()
		tx.DurableCommits += st.Txns.DurableCommits
		tx.Aborts += st.Txns.Aborts
		tx.RFASkips += st.Txns.RFASkips
		tx.RFAFlushes += st.Txns.RFAFlushes
		appended += st.WAL.AppendedBytes
		ckptInc += st.Ckpt.Increments
		ckptBytes += st.Ckpt.WrittenBytes
		evict += st.Pool.Evictions
	}
	fmt.Printf("\n=== summary (%s, %d threads, %d shard(s), %.0fs) ===\n", mode, *threads, len(engines), elapsed)
	fmt.Printf("throughput:     %.0f txn/s (%d committed, %d aborted)\n",
		float64(tx.DurableCommits)/elapsed, tx.DurableCommits, tx.Aborts)
	fmt.Printf("mix:            neworder=%d payment=%d orderstatus=%d delivery=%d stocklevel=%d\n",
		tp.CntNewOrder.Load(), tp.CntPayment.Load(), tp.CntOrderStatus.Load(),
		tp.CntDelivery.Load(), tp.CntStockLevel.Load())
	if cl != nil {
		fmt.Printf("cross-shard:    %d two-phase commits (%.2f%% of commits)\n",
			cl.CrossShardTxns(), 100*safeDiv(float64(cl.CrossShardTxns()), float64(tx.DurableCommits)))
	}
	if tx.RFASkips+tx.RFAFlushes > 0 {
		fmt.Printf("remote flushes: %.1f%%\n",
			100*float64(tx.RFAFlushes)/float64(tx.RFASkips+tx.RFAFlushes))
	}
	fmt.Printf("log:            %.1f MiB appended (%.0f B/txn), %.1f MiB live\n",
		float64(appended)/(1<<20),
		safeDiv(float64(appended), float64(tx.DurableCommits)),
		float64(liveWAL())/(1<<20))
	fmt.Printf("checkpointer:   %d increments, %.1f MiB written\n",
		ckptInc, float64(ckptBytes)/(1<<20))
	fmt.Printf("buffer pool:    %d evictions\n", evict)
}

func modeNames() []string {
	out := make([]string, 0, len(modes))
	for n := range modes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
