// Command tpcc runs the TPC-C benchmark (all five transactions, standard
// mix) against the engine in any logging mode, printing per-second
// throughput and a final summary with per-transaction-type counts, log
// statistics, and checkpoint activity.
//
//	go run ./cmd/tpcc -mode ours -warehouses 4 -threads 4 -duration 10s
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/workload"
)

var modes = map[string]core.Mode{
	"ours":             core.ModeOurs,
	"no-rfa":           core.ModeNoRFA,
	"group-commit":     core.ModeGroupCommit,
	"group-commit+rfa": core.ModeGroupCommitRFA,
	"aries":            core.ModeARIES,
	"aether":           core.ModeAether,
	"silor":            core.ModeSiloR,
	"textbook":         core.ModeTextbook,
	"no-logging":       core.ModeNoLogging,
}

func main() {
	modeName := flag.String("mode", "ours", "logging mode: "+strings.Join(modeNames(), "|"))
	warehouses := flag.Int("warehouses", 4, "TPC-C warehouses")
	items := flag.Int("items", 2000, "items (spec: 100000)")
	custPerDist := flag.Int("customers", 150, "customers per district (spec: 3000)")
	threads := flag.Int("threads", 4, "worker threads")
	duration := flag.Duration("duration", 10*time.Second, "measurement duration")
	poolMiB := flag.Int("pool-mib", 64, "buffer pool size in MiB")
	walMiB := flag.Int("wal-mib", 32, "WAL limit in MiB")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/trace and /debug/pprof on this address (e.g. 127.0.0.1:9100)")
	flag.Parse()

	mode, ok := modes[*modeName]
	if !ok {
		log.Fatalf("unknown mode %q (want %s)", *modeName, strings.Join(modeNames(), "|"))
	}
	eng, err := core.Open(core.Config{
		Mode:      mode,
		Workers:   *threads,
		PoolPages: *poolMiB << 20 / (16 << 10),
		WALLimit:  int64(*walMiB) << 20,
		ObsAddr:   *obsAddr,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	if a := eng.ObsAddr(); a != "" {
		fmt.Printf("observability endpoint: http://%s/metrics\n", a)
	}

	fmt.Printf("loading TPC-C: %d warehouses, %d items, %d customers/district...\n",
		*warehouses, *items, *custPerDist)
	s := eng.NewSessionOn(0)
	tp, err := workload.NewTPCC(*warehouses, func(name string) (*btree.BTree, error) {
		return eng.CreateTree(s, name)
	})
	if err != nil {
		log.Fatal(err)
	}
	tp.Items, tp.CustPerDist = *items, *custPerDist
	loadStart := time.Now()
	if err := tp.Load(s, 42); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded in %v (%d pages)\n", time.Since(loadStart).Round(time.Millisecond), eng.Pool().NextPID())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < *threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ws := eng.NewSessionOn(i % *threads)
			defer func() {
				if r := recover(); r != nil {
					if r == buffer.ErrPoolInterrupted {
						ws.AbandonForCrash()
						return
					}
					panic(r)
				}
			}()
			w := tp.NewWorker(uint64(i)*7919+1, i%*warehouses+1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				w.RunMix(ws)
			}
		}(i)
	}

	start := time.Now()
	prev := eng.Txns().Stats().DurableCommits
	ticker := time.NewTicker(time.Second)
	for time.Since(start) < *duration {
		<-ticker.C
		cur := eng.Txns().Stats().DurableCommits
		fmt.Printf("  t=%4.0fs  %8d txn/s   WAL %6.1f MiB\n",
			time.Since(start).Seconds(), cur-prev, float64(eng.WAL().LiveWALBytes())/(1<<20))
		prev = cur
	}
	ticker.Stop()
	close(stop)
	eng.Interrupt()
	wg.Wait()

	st := eng.Stats()
	elapsed := time.Since(start).Seconds()
	fmt.Printf("\n=== summary (%s, %d threads, %.0fs) ===\n", mode, *threads, elapsed)
	fmt.Printf("throughput:     %.0f txn/s (%d committed, %d aborted)\n",
		float64(st.Txns.DurableCommits)/elapsed, st.Txns.DurableCommits, st.Txns.Aborts)
	fmt.Printf("mix:            neworder=%d payment=%d orderstatus=%d delivery=%d stocklevel=%d\n",
		tp.CntNewOrder.Load(), tp.CntPayment.Load(), tp.CntOrderStatus.Load(),
		tp.CntDelivery.Load(), tp.CntStockLevel.Load())
	if st.Txns.RFASkips+st.Txns.RFAFlushes > 0 {
		fmt.Printf("remote flushes: %.1f%%\n",
			100*float64(st.Txns.RFAFlushes)/float64(st.Txns.RFASkips+st.Txns.RFAFlushes))
	}
	fmt.Printf("log:            %.1f MiB appended (%.0f B/txn), %.1f MiB live, %d seal stalls\n",
		float64(st.WAL.AppendedBytes)/(1<<20),
		safeDiv(float64(st.WAL.AppendedBytes), float64(st.Txns.DurableCommits)),
		float64(st.LiveWALBytes)/(1<<20), st.WAL.SealStalls)
	fmt.Printf("checkpointer:   %d increments, %.1f MiB written\n",
		st.Ckpt.Increments, float64(st.Ckpt.WrittenBytes)/(1<<20))
	fmt.Printf("buffer pool:    %d evictions, %.1f MiB written back, %.1f MiB read\n",
		st.Pool.Evictions, float64(st.Pool.ProviderWriteBytes)/(1<<20), float64(st.Pool.PageReadBytes)/(1<<20))
}

func modeNames() []string {
	out := make([]string, 0, len(modes))
	for n := range modes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
